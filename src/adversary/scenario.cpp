#include "adversary/scenario.hpp"

#include <algorithm>

#include "adversary/byzantine.hpp"
#include "common/error.hpp"
#include "core/failstop.hpp"
#include "core/majority.hpp"
#include "core/malicious.hpp"

namespace rcp::adversary {

const char* to_string(ProtocolKind kind) noexcept {
  switch (kind) {
    case ProtocolKind::fail_stop:
      return "fail-stop (Fig 1)";
    case ProtocolKind::malicious:
      return "malicious (Fig 2)";
    case ProtocolKind::majority:
      return "majority variant (S4.1)";
  }
  return "?";
}

const char* to_string(ByzantineKind kind) noexcept {
  switch (kind) {
    case ByzantineKind::silent:
      return "silent";
    case ByzantineKind::equivocator:
      return "equivocator";
    case ByzantineKind::balancer:
      return "balancer";
    case ByzantineKind::babbler:
      return "babbler";
    case ByzantineKind::scripted:
      return "scripted";
  }
  return "?";
}

std::unique_ptr<sim::Process> make_byzantine(
    ByzantineKind kind, core::ConsensusParams params,
    const std::vector<ScriptedMove>& moves) {
  switch (kind) {
    case ByzantineKind::silent:
      return std::make_unique<SilentByzantine>();
    case ByzantineKind::equivocator:
      return std::make_unique<EquivocatorByzantine>(params);
    case ByzantineKind::balancer:
      return std::make_unique<BalancerByzantine>(params);
    case ByzantineKind::babbler:
      return std::make_unique<BabblerByzantine>(params);
    case ByzantineKind::scripted:
      return std::make_unique<ScriptedByzantine>(params, moves);
  }
  RCP_INVARIANT(false, "unknown byzantine kind");
}

namespace {

std::unique_ptr<sim::Process> make_protocol(const Scenario& s, Value input) {
  switch (s.protocol) {
    case ProtocolKind::fail_stop:
      return s.unchecked
                 ? core::FailStopConsensus::make_unchecked(s.params, input)
                 : core::FailStopConsensus::make(s.params, input);
    case ProtocolKind::malicious:
      return s.unchecked
                 ? core::MaliciousConsensus::make_unchecked(s.params, input)
                 : core::MaliciousConsensus::make(s.params, input);
    case ProtocolKind::majority:
      return s.unchecked
                 ? core::MajorityConsensus::make_unchecked(s.params, input)
                 : core::MajorityConsensus::make(s.params, input);
  }
  RCP_INVARIANT(false, "unknown protocol kind");
}

}  // namespace

std::unique_ptr<sim::Simulation> build(
    const Scenario& scenario, std::unique_ptr<sim::DeliveryPolicy> delivery,
    std::unique_ptr<sim::SchedulerPolicy> scheduler) {
  const std::uint32_t n = scenario.params.n;
  RCP_EXPECT(scenario.inputs.size() == n, "need one input per process");
  for (const ProcessId b : scenario.byzantine_ids) {
    RCP_EXPECT(b < n, "byzantine id outside [0, n)");
  }

  std::vector<bool> is_byz(n, false);
  for (const ProcessId b : scenario.byzantine_ids) {
    is_byz[b] = true;
  }

  std::vector<std::unique_ptr<sim::Process>> procs;
  procs.reserve(n);
  for (ProcessId p = 0; p < n; ++p) {
    if (is_byz[p]) {
      procs.push_back(make_byzantine(scenario.byzantine_kind, scenario.params,
                                     scenario.scripted_moves));
    } else {
      procs.push_back(make_protocol(scenario, scenario.inputs[p]));
    }
  }

  auto simulation = std::make_unique<sim::Simulation>(
      sim::SimConfig{
          .n = n, .seed = scenario.seed, .max_steps = scenario.max_steps},
      std::move(procs), std::move(delivery), std::move(scheduler));
  for (ProcessId p = 0; p < n; ++p) {
    if (is_byz[p]) {
      simulation->mark_faulty(p);
    }
  }
  scenario.crashes.apply(*simulation);
  return simulation;
}

std::vector<Value> inputs_with_ones(std::uint32_t n, std::uint32_t ones) {
  RCP_EXPECT(ones <= n, "more ones than processes");
  std::vector<Value> inputs(n, Value::zero);
  std::fill_n(inputs.begin(), ones, Value::one);
  return inputs;
}

std::vector<Value> alternating_inputs(std::uint32_t n) {
  std::vector<Value> inputs(n, Value::zero);
  for (std::uint32_t p = 0; p < n; ++p) {
    inputs[p] = p % 2 == 0 ? Value::zero : Value::one;
  }
  return inputs;
}

std::vector<Value> random_inputs(std::uint32_t n, Rng& rng) {
  std::vector<Value> inputs(n, Value::zero);
  for (auto& v : inputs) {
    v = rng.bernoulli(0.5) ? Value::one : Value::zero;
  }
  return inputs;
}

namespace {

// The exact scenarios whose digests tests/sim/trace_digest_test.cpp pins.
// Changing any field here changes a golden digest — that is the point: the
// registry and the goldens must move together.
std::vector<NamedScenario> make_builtins() {
  std::vector<NamedScenario> out;

  {
    Scenario s;
    s.protocol = ProtocolKind::fail_stop;
    s.params = {5, 1};
    s.inputs = alternating_inputs(5);
    s.crashes = CrashPlan::staggered(1);
    s.seed = 42;
    s.max_steps = 200000;
    out.push_back({"failstop_n5",
                   "Fig 1, n=5 k=1, alternating inputs, staggered crash", s});
  }
  {
    Scenario s;
    s.protocol = ProtocolKind::malicious;
    s.params = {7, 2};
    s.inputs = alternating_inputs(7);
    s.byzantine_ids = {6};
    s.byzantine_kind = ByzantineKind::equivocator;
    s.seed = 2026;
    s.max_steps = 500000;
    out.push_back({"malicious_n7_equivocator",
                   "Fig 2, n=7 k=2, one equivocator", s});
  }
  {
    Scenario s;
    s.protocol = ProtocolKind::majority;
    s.params = {9, 2};
    s.inputs = inputs_with_ones(9, 5);
    s.seed = 7;
    s.max_steps = 500000;
    out.push_back({"majority_n9", "S4.1 variant, n=9 k=2, 5 ones", s});
  }
  {
    Scenario s;
    s.protocol = ProtocolKind::malicious;
    s.params = {10, 3};
    s.inputs = alternating_inputs(10);
    s.byzantine_ids = {0, 4, 8};
    s.byzantine_kind = ByzantineKind::babbler;
    s.seed = 777;
    s.max_steps = 2000000;
    out.push_back({"babbler_n10", "Fig 2, n=10 k=3, three babblers", s});
  }
  {
    Scenario s;
    s.protocol = ProtocolKind::malicious;
    s.params = {10, 2};
    s.inputs = alternating_inputs(10);
    s.byzantine_ids = {0, 5};
    s.byzantine_kind = ByzantineKind::balancer;
    s.seed = 31337;
    s.max_steps = 4000000;
    out.push_back({"balancer_n10", "Fig 2, n=10 k=2, two balancers", s});
  }
  return out;
}

}  // namespace

const std::vector<NamedScenario>& builtin_scenarios() {
  static const std::vector<NamedScenario> kBuiltins = make_builtins();
  return kBuiltins;
}

}  // namespace rcp::adversary
