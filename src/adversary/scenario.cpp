#include "adversary/scenario.hpp"

#include <algorithm>

#include "adversary/byzantine.hpp"
#include "common/error.hpp"
#include "core/failstop.hpp"
#include "core/majority.hpp"
#include "core/malicious.hpp"

namespace rcp::adversary {

const char* to_string(ProtocolKind kind) noexcept {
  switch (kind) {
    case ProtocolKind::fail_stop:
      return "fail-stop (Fig 1)";
    case ProtocolKind::malicious:
      return "malicious (Fig 2)";
    case ProtocolKind::majority:
      return "majority variant (S4.1)";
  }
  return "?";
}

const char* to_string(ByzantineKind kind) noexcept {
  switch (kind) {
    case ByzantineKind::silent:
      return "silent";
    case ByzantineKind::equivocator:
      return "equivocator";
    case ByzantineKind::balancer:
      return "balancer";
    case ByzantineKind::babbler:
      return "babbler";
  }
  return "?";
}

std::unique_ptr<sim::Process> make_byzantine(ByzantineKind kind,
                                             core::ConsensusParams params) {
  switch (kind) {
    case ByzantineKind::silent:
      return std::make_unique<SilentByzantine>();
    case ByzantineKind::equivocator:
      return std::make_unique<EquivocatorByzantine>(params);
    case ByzantineKind::balancer:
      return std::make_unique<BalancerByzantine>(params);
    case ByzantineKind::babbler:
      return std::make_unique<BabblerByzantine>(params);
  }
  RCP_INVARIANT(false, "unknown byzantine kind");
}

namespace {

std::unique_ptr<sim::Process> make_protocol(const Scenario& s, Value input) {
  switch (s.protocol) {
    case ProtocolKind::fail_stop:
      return s.unchecked
                 ? core::FailStopConsensus::make_unchecked(s.params, input)
                 : core::FailStopConsensus::make(s.params, input);
    case ProtocolKind::malicious:
      return s.unchecked
                 ? core::MaliciousConsensus::make_unchecked(s.params, input)
                 : core::MaliciousConsensus::make(s.params, input);
    case ProtocolKind::majority:
      return s.unchecked
                 ? core::MajorityConsensus::make_unchecked(s.params, input)
                 : core::MajorityConsensus::make(s.params, input);
  }
  RCP_INVARIANT(false, "unknown protocol kind");
}

}  // namespace

std::unique_ptr<sim::Simulation> build(
    const Scenario& scenario, std::unique_ptr<sim::DeliveryPolicy> delivery,
    std::unique_ptr<sim::SchedulerPolicy> scheduler) {
  const std::uint32_t n = scenario.params.n;
  RCP_EXPECT(scenario.inputs.size() == n, "need one input per process");
  for (const ProcessId b : scenario.byzantine_ids) {
    RCP_EXPECT(b < n, "byzantine id outside [0, n)");
  }

  std::vector<bool> is_byz(n, false);
  for (const ProcessId b : scenario.byzantine_ids) {
    is_byz[b] = true;
  }

  std::vector<std::unique_ptr<sim::Process>> procs;
  procs.reserve(n);
  for (ProcessId p = 0; p < n; ++p) {
    if (is_byz[p]) {
      procs.push_back(make_byzantine(scenario.byzantine_kind, scenario.params));
    } else {
      procs.push_back(make_protocol(scenario, scenario.inputs[p]));
    }
  }

  auto simulation = std::make_unique<sim::Simulation>(
      sim::SimConfig{
          .n = n, .seed = scenario.seed, .max_steps = scenario.max_steps},
      std::move(procs), std::move(delivery), std::move(scheduler));
  for (ProcessId p = 0; p < n; ++p) {
    if (is_byz[p]) {
      simulation->mark_faulty(p);
    }
  }
  scenario.crashes.apply(*simulation);
  return simulation;
}

std::vector<Value> inputs_with_ones(std::uint32_t n, std::uint32_t ones) {
  RCP_EXPECT(ones <= n, "more ones than processes");
  std::vector<Value> inputs(n, Value::zero);
  std::fill_n(inputs.begin(), ones, Value::one);
  return inputs;
}

std::vector<Value> alternating_inputs(std::uint32_t n) {
  std::vector<Value> inputs(n, Value::zero);
  for (std::uint32_t p = 0; p < n; ++p) {
    inputs[p] = p % 2 == 0 ? Value::zero : Value::one;
  }
  return inputs;
}

std::vector<Value> random_inputs(std::uint32_t n, Rng& rng) {
  std::vector<Value> inputs(n, Value::zero);
  for (auto& v : inputs) {
    v = rng.bernoulli(0.5) ? Value::one : Value::zero;
  }
  return inputs;
}

}  // namespace rcp::adversary
