#include "adversary/byzantine.hpp"

#include "common/error.hpp"

namespace rcp::adversary {

using core::EchoProtocolMsg;
using core::MajorityMsg;

void ByzantineBase::on_start(sim::Context& ctx) {
  started_ = true;
  attack_phase(ctx, 0);
}

void ByzantineBase::on_message(sim::Context& ctx, const sim::Envelope& env) {
  EchoProtocolMsg msg;
  try {
    msg = EchoProtocolMsg::decode(env.payload);
  } catch (const DecodeError&) {
    return;
  }
  if (msg.phase > frontier_) {
    advance_to(ctx, msg.phase);
  }
  observe(ctx, env.sender, msg);
}

void ByzantineBase::advance_to(sim::Context& ctx, Phase target) {
  while (frontier_ < target) {
    ++frontier_;
    attack_phase(ctx, frontier_);
  }
}

void ByzantineBase::observe(sim::Context& /*ctx*/, ProcessId /*sender*/,
                            const EchoProtocolMsg& /*msg*/) {}

// ---- Equivocator -----------------------------------------------------

void EquivocatorByzantine::attack_phase(sim::Context& ctx, Phase t) {
  const std::uint32_t n = params().n;
  for (ProcessId q = 0; q < n; ++q) {
    // rcp-lint: allow(threshold) id-space split for equivocation, not a quorum
    const Value v = q < n / 2 ? Value::zero : Value::one;
    ctx.send(q, EchoProtocolMsg{
                    .is_echo = false, .from = ctx.self(), .value = v, .phase = t}
                    .encode());
  }
}

void EquivocatorByzantine::observe(sim::Context& ctx, ProcessId /*sender*/,
                                   const EchoProtocolMsg& msg) {
  if (msg.is_echo) {
    return;
  }
  // Two-faced echoing of other processes' initials: confirm the true value
  // to one half of the system and the opposite value to the other half.
  const std::uint32_t n = params().n;
  for (ProcessId q = 0; q < n; ++q) {
    // rcp-lint: allow(threshold) id-space split for equivocation, not a quorum
    const Value v = q < n / 2 ? msg.value : other(msg.value);
    ctx.send(q, EchoProtocolMsg{
                    .is_echo = true, .from = msg.from, .value = v, .phase = msg.phase}
                    .encode());
  }
}

// ---- Balancer ---------------------------------------------------------

void BalancerByzantine::attack_phase(sim::Context& ctx, Phase t) {
  // Vote the minority value of what was observed in the previous phase
  // (ties -> 1, to oppose the protocol's tie-to-0 rule).
  const Value v = observed_[Value::one] < observed_[Value::zero]
                      ? Value::one
                      : Value::zero;
  const Value vote = observed_.total() == 0 ? Value::one : v;
  observed_.reset();
  observed_phase_ = t;
  ctx.broadcast(EchoProtocolMsg{
      .is_echo = false, .from = ctx.self(), .value = vote, .phase = t}
                    .encode());
}

void BalancerByzantine::observe(sim::Context& ctx, ProcessId /*sender*/,
                                const EchoProtocolMsg& msg) {
  if (!msg.is_echo && msg.phase == observed_phase_) {
    observed_[msg.value] += 1;
  }
  if (!msg.is_echo) {
    // Honest echo so correct processes keep accepting everyone's state.
    ctx.broadcast(EchoProtocolMsg{.is_echo = true,
                                  .from = msg.from,
                                  .value = msg.value,
                                  .phase = msg.phase}
                      .encode());
  }
}

// ---- Babbler ----------------------------------------------------------

void BabblerByzantine::attack_phase(sim::Context& ctx, Phase t) {
  Rng& rng = ctx.rng();
  const std::uint32_t n = params().n;
  // A random initial for this phase.
  ctx.broadcast(EchoProtocolMsg{.is_echo = false,
                                .from = ctx.self(),
                                .value = rng.bernoulli(0.5) ? Value::one
                                                            : Value::zero,
                                .phase = t}
                    .encode());
  // A few forged echoes about random origins and random values.
  const std::uint64_t forgeries = rng.below(3) + 1;
  for (std::uint64_t i = 0; i < forgeries; ++i) {
    ctx.send(static_cast<ProcessId>(rng.below(n)),
             EchoProtocolMsg{.is_echo = true,
                             .from = static_cast<ProcessId>(rng.below(n)),
                             .value = rng.bernoulli(0.5) ? Value::one
                                                         : Value::zero,
                             .phase = t}
                 .encode());
  }
  // Malformed bytes: random length, random content.
  Bytes junk(rng.below(24) + 1);
  for (auto& b : junk) {
    b = static_cast<std::byte>(rng.below(256));
  }
  ctx.send(static_cast<ProcessId>(rng.below(n)), std::move(junk));
}

// ---- Scripted ----------------------------------------------------------

const ScriptedMove* ScriptedByzantine::move_for(Phase t) const noexcept {
  if (moves_.empty()) {
    return nullptr;
  }
  return &moves_[static_cast<std::size_t>(t % moves_.size())];
}

bool ScriptedByzantine::below_split(const ScriptedMove& move,
                                    ProcessId q) const noexcept {
  // Fraction-of-id-space comparison; split256 = 128 reproduces the
  // equivocator's "first half" split at every n.
  return static_cast<std::uint64_t>(q) * 256 <
         static_cast<std::uint64_t>(move.split256) * params().n;
}

void ScriptedByzantine::attack_phase(sim::Context& ctx, Phase t) {
  const ScriptedMove* move = move_for(t);
  if (move == nullptr) {
    return;  // empty script: silent
  }
  const std::uint32_t n = params().n;
  for (ProcessId q = 0; q < n; ++q) {
    const Value v = below_split(*move, q) ? move->low_value : move->high_value;
    ctx.send(q, EchoProtocolMsg{
                    .is_echo = false, .from = ctx.self(), .value = v, .phase = t}
                    .encode());
  }
}

void ScriptedByzantine::observe(sim::Context& ctx, ProcessId /*sender*/,
                                const EchoProtocolMsg& msg) {
  if (msg.is_echo) {
    return;
  }
  const ScriptedMove* move = move_for(msg.phase);
  if (move == nullptr || move->echo_mode == 0) {
    return;
  }
  const std::uint32_t n = params().n;
  for (ProcessId q = 0; q < n; ++q) {
    const Value v = move->echo_mode == 1 || below_split(*move, q)
                        ? msg.value
                        : other(msg.value);
    ctx.send(q, EchoProtocolMsg{
                    .is_echo = true, .from = msg.from, .value = v, .phase = msg.phase}
                    .encode());
  }
}

// ---- SplitVoice (majority variant attack) ------------------------------

void SplitVoiceByzantine::on_start(sim::Context& ctx) {
  vote(ctx, 0);
}

void SplitVoiceByzantine::on_message(sim::Context& ctx,
                                     const sim::Envelope& env) {
  MajorityMsg msg;
  try {
    msg = MajorityMsg::decode(env.payload);
  } catch (const DecodeError&) {
    return;
  }
  while (frontier_ < msg.phase) {
    ++frontier_;
    vote(ctx, frontier_);
  }
}

void SplitVoiceByzantine::vote(sim::Context& ctx, Phase t) {
  for (ProcessId q = 0; q < params_.n; ++q) {
    const Value v = q < split_ ? Value::zero : Value::one;
    ctx.send(q, MajorityMsg{.phase = t, .value = v}.encode());
  }
}

}  // namespace rcp::adversary
