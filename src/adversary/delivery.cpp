#include "adversary/delivery.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace rcp::adversary {

PartitionDelivery::PartitionDelivery(std::vector<std::uint32_t> group_of,
                                     std::uint64_t heal_at_step)
    : group_of_(std::move(group_of)), heal_at_step_(heal_at_step) {
  RCP_EXPECT(!group_of_.empty(), "partition needs a group map");
}

std::optional<std::size_t> PartitionDelivery::pick(
    ProcessId receiver, const sim::Mailbox& mailbox, std::uint64_t now_step,
    Rng& rng) {
  if (mailbox.empty()) {
    return std::nullopt;
  }
  if (now_step >= heal_at_step_) {
    return static_cast<std::size_t>(rng.below(mailbox.size()));
  }
  RCP_EXPECT(receiver < group_of_.size(), "receiver outside group map");
  const std::uint32_t group = group_of_[receiver];
  std::vector<std::size_t> intra;
  intra.reserve(mailbox.size());
  for (std::size_t i = 0; i < mailbox.size(); ++i) {
    const ProcessId s = mailbox.contents()[i].sender;
    RCP_EXPECT(s < group_of_.size(), "sender outside group map");
    if (group_of_[s] == group) {
      intra.push_back(i);
    }
  }
  if (intra.empty()) {
    return std::nullopt;  // only withheld cross-group traffic is buffered
  }
  return intra[static_cast<std::size_t>(rng.below(intra.size()))];
}

std::unique_ptr<PartitionDelivery> PartitionDelivery::split_at(
    std::uint32_t n, std::uint32_t boundary, std::uint64_t heal_at_step) {
  RCP_EXPECT(boundary <= n, "split boundary outside [0, n]");
  std::vector<std::uint32_t> groups(n, 1);
  for (std::uint32_t p = 0; p < boundary; ++p) {
    groups[p] = 0;
  }
  return std::make_unique<PartitionDelivery>(std::move(groups), heal_at_step);
}

StarveSendersDelivery::StarveSendersDelivery(std::uint32_t n,
                                             std::vector<ProcessId> slow_senders,
                                             double slow_probability)
    : is_slow_(n, false), slow_probability_(slow_probability) {
  RCP_EXPECT(slow_probability >= 0.0 && slow_probability < 1.0,
             "slow probability must lie in [0, 1)");
  for (const ProcessId p : slow_senders) {
    RCP_EXPECT(p < n, "slow sender outside [0, n)");
    is_slow_[p] = true;
  }
}

std::optional<std::size_t> StarveSendersDelivery::pick(
    ProcessId /*receiver*/, const sim::Mailbox& mailbox,
    std::uint64_t /*now_step*/, Rng& rng) {
  if (mailbox.empty()) {
    return std::nullopt;
  }
  if (slow_probability_ > 0.0 && rng.bernoulli(slow_probability_)) {
    return static_cast<std::size_t>(rng.below(mailbox.size()));
  }
  std::vector<std::size_t> fast;
  fast.reserve(mailbox.size());
  for (std::size_t i = 0; i < mailbox.size(); ++i) {
    if (!is_slow_[mailbox.contents()[i].sender]) {
      fast.push_back(i);
    }
  }
  if (!fast.empty()) {
    return fast[static_cast<std::size_t>(rng.below(fast.size()))];
  }
  // Only slow-sender messages remain; deliver one so the run stays live.
  return static_cast<std::size_t>(rng.below(mailbox.size()));
}

std::optional<std::size_t> NewestHalfDelivery::pick(
    ProcessId /*receiver*/, const sim::Mailbox& mailbox,
    std::uint64_t /*now_step*/, Rng& rng) {
  if (mailbox.empty()) {
    return std::nullopt;
  }
  // Rank buffered messages by send sequence; draw uniformly from the newest
  // half (rounded up), so early messages languish as long as possible.
  std::vector<std::size_t> order(mailbox.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return mailbox.contents()[a].seq > mailbox.contents()[b].seq;
  });
  const std::size_t half = (order.size() + 1) / 2;
  return order[static_cast<std::size_t>(rng.below(half))];
}

}  // namespace rcp::adversary
