// A Byzantine strategy targeting Ben-Or's wire protocol: the report
// equivocator. Plain point-to-point Ben-Or lets a malicious process send
// value 0 reports to one half of the system and value 1 to the other —
// exactly the power reliable broadcast removes (see extensions/rb_benor).
#pragma once

#include "baselines/benor.hpp"
#include "common/process.hpp"
#include "common/types.hpp"
#include "core/params.hpp"

namespace rcp::adversary {

/// Tracks Ben-Or rounds from observed traffic; for every round it sends
/// report 0 to ids < n/2 and report 1 to the rest, and proposes the value
/// each half is leaning towards (amplifying the split). One such process
/// is within plain Ben-Or's k <= floor((n-1)/5) budget, so safety must
/// hold — the attack only drags out convergence; the companion bench
/// measures by how much, for the plain and RB-hardened variants.
class BenOrEquivocator final : public sim::Process {
 public:
  explicit BenOrEquivocator(core::ConsensusParams params) noexcept
      : params_(params) {}

  void on_start(sim::Context& ctx) override;
  void on_message(sim::Context& ctx, const sim::Envelope& env) override;
  [[nodiscard]] Phase phase() const noexcept override { return frontier_; }

 private:
  void attack_round(sim::Context& ctx, Phase round);

  core::ConsensusParams params_;
  Phase frontier_ = 0;
};

}  // namespace rcp::adversary
