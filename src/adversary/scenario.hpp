// Scenario builder: assembles complete simulations (protocol + inputs +
// faults + policies) so tests, benchmarks and examples share one vocabulary
// for describing experiments.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "adversary/byzantine.hpp"
#include "adversary/crash_plan.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "core/params.hpp"
#include "sim/simulation.hpp"

namespace rcp::adversary {

enum class ProtocolKind : std::uint8_t {
  fail_stop,  ///< Figure 1
  malicious,  ///< Figure 2
  majority,   ///< Section 4.1 variant
};

[[nodiscard]] const char* to_string(ProtocolKind kind) noexcept;

enum class ByzantineKind : std::uint8_t {
  silent,
  equivocator,
  balancer,
  babbler,
  scripted,  ///< move-table-driven (the fuzzer's search space)
};

[[nodiscard]] const char* to_string(ByzantineKind kind) noexcept;

/// Constructs one Byzantine process of the given strategy. For `scripted`,
/// `moves` supplies the move table (empty = silent).
[[nodiscard]] std::unique_ptr<sim::Process> make_byzantine(
    ByzantineKind kind, core::ConsensusParams params,
    const std::vector<ScriptedMove>& moves = {});

struct Scenario {
  ProtocolKind protocol = ProtocolKind::malicious;
  core::ConsensusParams params{};
  /// Initial value per process id; entries for Byzantine slots are ignored.
  /// Must have size params.n.
  std::vector<Value> inputs;
  /// Which slots run a Byzantine strategy instead of the protocol.
  std::vector<ProcessId> byzantine_ids;
  ByzantineKind byzantine_kind = ByzantineKind::silent;
  /// Move table for ByzantineKind::scripted (ignored otherwise).
  std::vector<ScriptedMove> scripted_moves;
  /// Crash schedule (fail-stop faults); victims stay protocol processes.
  CrashPlan crashes;
  std::uint64_t seed = 1;
  std::uint64_t max_steps = 2'000'000;
  /// Skip the resilience-bound validation (lower-bound experiments only).
  bool unchecked = false;
};

/// Builds the simulation: protocol processes in every slot except the
/// Byzantine ones, Byzantine slots marked faulty, crash plan applied.
/// Delivery/scheduler default to the paper's probabilistic system.
[[nodiscard]] std::unique_ptr<sim::Simulation> build(
    const Scenario& scenario,
    std::unique_ptr<sim::DeliveryPolicy> delivery = nullptr,
    std::unique_ptr<sim::SchedulerPolicy> scheduler = nullptr);

// ---- Input patterns ----------------------------------------------------

/// n inputs, the first `ones` of which are one (rest zero).
[[nodiscard]] std::vector<Value> inputs_with_ones(std::uint32_t n,
                                                  std::uint32_t ones);

/// Alternating 0,1,0,1,...
[[nodiscard]] std::vector<Value> alternating_inputs(std::uint32_t n);

/// Uniform random inputs.
[[nodiscard]] std::vector<Value> random_inputs(std::uint32_t n, Rng& rng);

// ---- Built-in scenario registry ----------------------------------------

/// A named, fully specified scenario. The registry below is the single
/// source of truth for the repo's golden scenarios: the trace-digest suite
/// pins their digests, and `scenario_runner --list-scenarios` enumerates
/// them next to the fuzzer-emitted plans under tests/data/.
struct NamedScenario {
  const char* name;     ///< stable identifier, e.g. "malicious_n7_equivocator"
  const char* summary;  ///< one-line description for listings
  Scenario scenario;
};

/// The hand-curated golden scenarios (digest-pinned; see
/// tests/sim/trace_digest_test.cpp). Order is stable.
[[nodiscard]] const std::vector<NamedScenario>& builtin_scenarios();

}  // namespace rcp::adversary
