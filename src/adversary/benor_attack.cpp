#include "adversary/benor_attack.hpp"

#include "common/error.hpp"

namespace rcp::adversary {

using baselines::BenOrConsensus;
using WireMsg = BenOrConsensus::WireMsg;

void BenOrEquivocator::on_start(sim::Context& ctx) {
  attack_round(ctx, 0);
}

void BenOrEquivocator::on_message(sim::Context& ctx,
                                  const sim::Envelope& env) {
  WireMsg msg;
  try {
    msg = BenOrConsensus::decode_wire(env.payload);
  } catch (const DecodeError&) {
    return;
  }
  while (frontier_ < msg.round) {
    ++frontier_;
    attack_round(ctx, frontier_);
  }
}

void BenOrEquivocator::attack_round(sim::Context& ctx, Phase round) {
  for (ProcessId q = 0; q < params_.n; ++q) {
    // rcp-lint: allow(threshold) id-space split for equivocation, not a quorum
    const std::uint8_t val = q < params_.n / 2 ? 0 : 1;
    ctx.send(q, BenOrConsensus::encode_wire(
                    WireMsg{.stage = 0, .round = round, .val = val}));
    // Matching split proposals: each half hears its own value proposed.
    ctx.send(q, BenOrConsensus::encode_wire(
                    WireMsg{.stage = 1, .round = round, .val = val}));
  }
}

}  // namespace rcp::adversary
