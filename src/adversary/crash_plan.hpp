// Crash plans for fail-stop experiments: which processes die, and when.
//
// The fail-stop model lets processes die silently at any point. A CrashPlan
// is a declarative schedule applied to a Simulation before it runs; the
// generators cover the interesting families: random victims at random
// times, everyone-at-a-phase-boundary (the moment Figure 1's proof treats
// most carefully), and initially-dead processes.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "sim/simulation.hpp"

namespace rcp::adversary {

struct CrashEvent {
  ProcessId victim = 0;
  /// Interpreted per `by_phase`.
  bool by_phase = false;
  std::uint64_t at_step = 0;  ///< used when !by_phase
  Phase at_phase = 0;         ///< used when by_phase
};

class CrashPlan {
 public:
  CrashPlan() = default;
  explicit CrashPlan(std::vector<CrashEvent> events)
      : events_(std::move(events)) {}

  [[nodiscard]] const std::vector<CrashEvent>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }

  void add_step_crash(ProcessId victim, std::uint64_t step);
  void add_phase_crash(ProcessId victim, Phase phase);

  /// Registers every event with the simulation.
  void apply(sim::Simulation& sim) const;

  // ---- Generators ----------------------------------------------------

  /// `count` distinct victims chosen uniformly from [0, n), each crashing
  /// at a uniform step in [0, max_step].
  [[nodiscard]] static CrashPlan random(std::uint32_t n, std::uint32_t count,
                                        std::uint64_t max_step, Rng& rng);

  /// `count` distinct victims, each dying exactly when it reaches its
  /// (randomly drawn) phase in [0, max_phase] — the adversarially
  /// interesting points, since a process then dies right after sending its
  /// phase broadcast to an arbitrary subset of steps of the system.
  [[nodiscard]] static CrashPlan random_phase_boundaries(std::uint32_t n,
                                                         std::uint32_t count,
                                                         Phase max_phase,
                                                         Rng& rng);

  /// `count` distinct victims dead before taking a single step.
  [[nodiscard]] static CrashPlan initially_dead(std::uint32_t n,
                                                std::uint32_t count, Rng& rng);

  /// Victims 0..count-1 crash at phases 1..count respectively — a
  /// staggered "one death per phase" schedule that maximally stretches the
  /// protocol's view churn.
  [[nodiscard]] static CrashPlan staggered(std::uint32_t count);

 private:
  std::vector<CrashEvent> events_;
};

}  // namespace rcp::adversary
