// Byzantine process implementations for attacking the malicious-case
// protocol (Figure 2) and the Section 4.1 majority variant.
//
// A malicious process "can send false and contradictory messages (even
// according to some malicious design), can fail to send messages, and can
// change its internal state to any other state". These classes implement
// the designs the paper reasons about:
//
//  - SilentByzantine      : sends nothing (subsumes fail-stop behaviour).
//  - EquivocatorByzantine : sends initial value 0 to one half of the system
//                           and 1 to the other, and echoes other processes'
//                           states two-facedly the same way.
//  - BalancerByzantine    : Section 4's worst case — "they will try to
//                           balance the number of 1 and 0 messages in the
//                           system" to stall convergence.
//  - BabblerByzantine     : floods random valid, duplicated and malformed
//                           messages (robustness fuzzing in-protocol).
//  - SplitVoiceByzantine  : the Theorem 3 equivocation against the
//                           echo-less majority variant, used by the
//                           lower-bound experiment E7.
//  - ScriptedByzantine    : a parameterized strategy driven by a move table
//                           (per-phase value split + echo behaviour) — the
//                           search space the schedule fuzzer (src/fuzz)
//                           mutates over; every hand-written design above
//                           is one point of this space.
//
// All strategies track the protocol's phase frontier from the traffic they
// observe and mount their attack once per phase.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/process.hpp"
#include "common/types.hpp"
#include "core/messages.hpp"
#include "core/params.hpp"

namespace rcp::adversary {

/// Shared machinery: observes Figure 2 traffic, advances a phase frontier,
/// and invokes attack_phase() exactly once per phase in increasing order.
class ByzantineBase : public sim::Process {
 public:
  void on_start(sim::Context& ctx) override;
  void on_message(sim::Context& ctx, const sim::Envelope& env) override;
  [[nodiscard]] Phase phase() const noexcept override { return frontier_; }

 protected:
  explicit ByzantineBase(core::ConsensusParams params) noexcept
      : params_(params) {}

  /// Mounts the per-phase attack (called for phases 0, 1, 2, ... in order).
  virtual void attack_phase(sim::Context& ctx, Phase t) = 0;

  /// Observes every decoded Figure 2 message (after frontier update).
  virtual void observe(sim::Context& ctx, ProcessId sender,
                       const core::EchoProtocolMsg& msg);

  [[nodiscard]] const core::ConsensusParams& params() const noexcept {
    return params_;
  }

 private:
  void advance_to(sim::Context& ctx, Phase target);

  core::ConsensusParams params_;
  Phase frontier_ = 0;
  bool started_ = false;
};

/// Never sends anything.
class SilentByzantine final : public sim::Process {
 public:
  void on_start(sim::Context&) override {}
  void on_message(sim::Context&, const sim::Envelope&) override {}
};

/// Sends contradictory initials and echoes: value 0 to ids < n/2, value 1
/// to the rest.
class EquivocatorByzantine final : public ByzantineBase {
 public:
  explicit EquivocatorByzantine(core::ConsensusParams params) noexcept
      : ByzantineBase(params) {}

 protected:
  void attack_phase(sim::Context& ctx, Phase t) override;
  void observe(sim::Context& ctx, ProcessId sender,
               const core::EchoProtocolMsg& msg) override;
};

/// Votes so as to balance the system: each phase it sends the value that
/// was in the minority among the initial messages it observed in the
/// previous phase. Echoes honestly so its votes keep being accepted.
class BalancerByzantine final : public ByzantineBase {
 public:
  explicit BalancerByzantine(core::ConsensusParams params) noexcept
      : ByzantineBase(params) {}

 protected:
  void attack_phase(sim::Context& ctx, Phase t) override;
  void observe(sim::Context& ctx, ProcessId sender,
               const core::EchoProtocolMsg& msg) override;

 private:
  ValueCounts observed_;       ///< initial values seen in the current frontier phase
  Phase observed_phase_ = 0;
};

/// Sprays random initials, random echoes attributed to random origins,
/// duplicates, and malformed byte strings.
class BabblerByzantine final : public ByzantineBase {
 public:
  explicit BabblerByzantine(core::ConsensusParams params) noexcept
      : ByzantineBase(params) {}

 protected:
  void attack_phase(sim::Context& ctx, Phase t) override;
};

/// One phase of a ScriptedByzantine's behaviour. The split point is encoded
/// as a fraction of the id space (split256/256), so the same move table is
/// meaningful at any n — which is what lets the fuzzer mutate moves and n
/// independently.
struct ScriptedMove {
  /// Initial value sent to ids below the split point.
  Value low_value = Value::zero;
  /// Initial value sent to ids at or above the split point.
  Value high_value = Value::one;
  /// Split point numerator: ids q with q * 256 < split256 * n get low_value.
  std::uint8_t split256 = 128;
  /// 0 = echo nothing, 1 = echo honestly, 2 = echo two-facedly (true value
  /// below the split, opposite above).
  std::uint8_t echo_mode = 1;
};

/// Plays a move table against Figure 2: phase t executes move t (the table
/// cycles once exhausted; an empty table degenerates to SilentByzantine).
/// Every field of every move is fuzzer-mutable, making this the bridge from
/// SchedulePlan bytes to Byzantine behaviour.
class ScriptedByzantine final : public ByzantineBase {
 public:
  ScriptedByzantine(core::ConsensusParams params,
                    std::vector<ScriptedMove> moves) noexcept
      : ByzantineBase(params), moves_(std::move(moves)) {}

 protected:
  void attack_phase(sim::Context& ctx, Phase t) override;
  void observe(sim::Context& ctx, ProcessId sender,
               const core::EchoProtocolMsg& msg) override;

 private:
  [[nodiscard]] const ScriptedMove* move_for(Phase t) const noexcept;
  /// True iff `q` falls below the move's split point.
  [[nodiscard]] bool below_split(const ScriptedMove& move,
                                 ProcessId q) const noexcept;

  std::vector<ScriptedMove> moves_;
};

/// Equivocation against the echo-less majority variant: majority-message
/// value 0 to ids < split, value 1 to the rest, every phase it observes.
class SplitVoiceByzantine final : public sim::Process {
 public:
  SplitVoiceByzantine(core::ConsensusParams params, ProcessId split) noexcept
      : params_(params), split_(split) {}

  void on_start(sim::Context& ctx) override;
  void on_message(sim::Context& ctx, const sim::Envelope& env) override;
  [[nodiscard]] Phase phase() const noexcept override { return frontier_; }

 private:
  void vote(sim::Context& ctx, Phase t);

  core::ConsensusParams params_;
  ProcessId split_;
  Phase frontier_ = 0;
};

}  // namespace rcp::adversary
