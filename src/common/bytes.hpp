// Byte-level encoding helpers for protocol wire formats.
//
// The simulated message system (sim/) carries opaque byte payloads, exactly
// as a real network would; each protocol defines typed messages and encodes
// them through these little-endian writers/readers. Decoders throw
// DecodeError on malformed input so that fuzz/corruption tests can assert
// graceful failure instead of undefined behaviour.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "common/error.hpp"
#include "common/payload.hpp"

namespace rcp {

/// Wire payloads are small-buffer-optimized (see common/payload.hpp): every
/// protocol message fits Payload's inline capacity, so encoding and carrying
/// a message never allocates.
using Bytes = Payload;

/// Appends fixed-width little-endian integers to a byte buffer.
class ByteWriter {
 public:
  explicit ByteWriter(std::size_t reserve_hint = 16) { out_.reserve(reserve_hint); }

  ByteWriter& u8(std::uint8_t v) {
    out_.push_back(static_cast<std::byte>(v));
    return *this;
  }

  ByteWriter& u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      out_.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xff));
    }
    return *this;
  }

  ByteWriter& u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      out_.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xff));
    }
    return *this;
  }

  [[nodiscard]] Bytes take() && { return std::move(out_); }

 private:
  Bytes out_;
};

/// Consumes fixed-width little-endian integers from a byte span.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::byte> data) noexcept : data_(data) {}
  explicit ByteReader(const Payload& payload) noexcept
      : data_(payload.span()) {}

  [[nodiscard]] std::uint8_t u8() {
    need(1);
    return static_cast<std::uint8_t>(data_[pos_++]);
  }

  [[nodiscard]] std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * i);
    }
    return v;
  }

  [[nodiscard]] std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * i);
    }
    return v;
  }

  [[nodiscard]] std::size_t remaining() const noexcept {
    return data_.size() - pos_;
  }

  /// Throws DecodeError unless the entire payload was consumed.
  void expect_done() const {
    if (pos_ != data_.size()) {
      throw DecodeError("trailing bytes after message payload");
    }
  }

 private:
  void need(std::size_t bytes) const {
    if (data_.size() - pos_ < bytes) {
      throw DecodeError("message payload truncated");
    }
  }

  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
};

}  // namespace rcp
