#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace rcp {

void RunningStats::add(double x) noexcept {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept {
  return std::sqrt(variance());
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(count_);
  const auto nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void Histogram::add(std::uint64_t value, std::uint64_t weight) {
  buckets_[value] += weight;
  total_ += weight;
}

std::uint64_t Histogram::count_of(std::uint64_t value) const noexcept {
  const auto it = buckets_.find(value);
  return it == buckets_.end() ? 0 : it->second;
}

double Histogram::mean() const noexcept {
  if (total_ == 0) {
    return 0.0;
  }
  double sum = 0.0;
  for (const auto& [value, count] : buckets_) {
    sum += static_cast<double>(value) * static_cast<double>(count);
  }
  return sum / static_cast<double>(total_);
}

std::uint64_t Histogram::quantile(double q) const {
  RCP_EXPECT(q >= 0.0 && q <= 1.0, "quantile requires q in [0,1]");
  RCP_EXPECT(total_ > 0, "quantile of an empty histogram");
  const auto target = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(total_)));
  std::uint64_t running = 0;
  for (const auto& [value, count] : buckets_) {
    running += count;
    if (running >= target) {
      return value;
    }
  }
  return buckets_.rbegin()->first;
}

std::uint64_t Histogram::max_value() const noexcept {
  return buckets_.empty() ? 0 : buckets_.rbegin()->first;
}

double quantile(std::span<const double> samples, double q) {
  RCP_EXPECT(!samples.empty(), "quantile of an empty sample set");
  RCP_EXPECT(q >= 0.0 && q <= 1.0, "quantile requires q in [0,1]");
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace rcp
