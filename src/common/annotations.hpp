// Thread-safety annotations, checked by two independent analyzers.
//
// Under clang the RCP_* macros expand to the -Wthread-safety capability
// attributes (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html), so
// the clang CI job proves lock discipline with full call-graph analysis.
// Under every other compiler they expand to nothing — but rcp-lint's
// `thread-safety` rule parses the markers straight out of the source
// text, so the same contracts are enforced token-level on every build
// (see docs/LINT.md).
//
// The two views deliberately share one spelling: an annotation that one
// analyzer honours and the other ignores is a bug in this header.
#pragma once

#if defined(__clang__)
#define RCP_TSA_(x) __attribute__((x))
#else
#define RCP_TSA_(x)
#endif

/// Marks a class as a capability (a mutex, or a role such as "the thread
/// driving this object"). The string names the capability kind in clang
/// diagnostics.
#define RCP_CAPABILITY(name) RCP_TSA_(capability(name))

/// Marks an RAII class whose constructor acquires and destructor releases
/// a capability (see runtime::MutexLock).
#define RCP_SCOPED_CAPABILITY RCP_TSA_(scoped_lockable)

/// Member may only be read or written while holding `x`.
#define RCP_GUARDED_BY(x) RCP_TSA_(guarded_by(x))

/// Pointee of the annotated pointer member is guarded by `x`.
#define RCP_PT_GUARDED_BY(x) RCP_TSA_(pt_guarded_by(x))

/// Caller must hold the listed capabilities before calling.
#define RCP_REQUIRES(...) RCP_TSA_(requires_capability(__VA_ARGS__))

/// Caller must NOT hold the listed capabilities (deadlock guard for
/// functions that acquire them internally).
#define RCP_EXCLUDES(...) RCP_TSA_(locks_excluded(__VA_ARGS__))

/// Function acquires the listed capabilities (held on return).
#define RCP_ACQUIRE(...) RCP_TSA_(acquire_capability(__VA_ARGS__))

/// Function releases the listed capabilities.
#define RCP_RELEASE(...) RCP_TSA_(release_capability(__VA_ARGS__))

/// Function acquires the capabilities when it returns `ret`.
#define RCP_TRY_ACQUIRE(ret, ...) \
  RCP_TSA_(try_acquire_capability(ret, __VA_ARGS__))

/// Calling the function asserts (without acquiring) that the capability is
/// held — the static escape hatch for facts established by runtime
/// structure, e.g. "only the loop thread reaches this path".
#define RCP_ASSERT_CAPABILITY(x) RCP_TSA_(assert_capability(x))

/// Function returns a reference to the named capability.
#define RCP_RETURN_CAPABILITY(x) RCP_TSA_(lock_returned(x))

/// Function body is exempt from analysis. Reserve for code whose safety
/// argument lives outside the lock discipline (condition-variable wait
/// predicates run under the wait's own mutex contract) and pair it with a
/// comment citing that argument.
#define RCP_NO_THREAD_SAFETY_ANALYSIS RCP_TSA_(no_thread_safety_analysis)

namespace rcp {

/// A pseudo-capability representing "the single thread currently driving
/// this object" — thread confinement made visible to the analyzers.
///
/// It has no runtime state and acquires nothing: holding it is a claim,
/// introduced at the few places where the runtime structure makes the
/// claim true (an event loop entering a node's callbacks, a driver thread
/// that owns an object before any worker exists). Members annotated
/// RCP_GUARDED_BY(affinity) and methods annotated RCP_REQUIRES(affinity)
/// are then statically confined to those paths.
class RCP_CAPABILITY("thread role") ThreadAffinity {
 public:
  /// States that the calling thread is the driver. Both analyzers treat
  /// the capability as held from this call to the end of the scope.
  void assert_held() const RCP_ASSERT_CAPABILITY(this) {}
};

}  // namespace rcp
