// Error types and contract-checking helpers.
//
// Following the C++ Core Guidelines (I.5/I.6, E.*): interface preconditions
// are stated and checked; violations signal programmer error and throw a
// dedicated exception type carrying the failing expression and location.
#pragma once

#include <stdexcept>
#include <string>

namespace rcp {

/// Base class for all rcp errors.
class Error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A caller violated a documented precondition.
class PreconditionError : public Error {
 public:
  using Error::Error;
};

/// An internal invariant did not hold (a bug in this library).
class InvariantError : public Error {
 public:
  using Error::Error;
};

/// Malformed bytes were handed to a wire-format decoder.
class DecodeError : public Error {
 public:
  using Error::Error;
};

namespace detail {
[[noreturn]] void throw_precondition(const char* expr, const char* file,
                                     int line, const std::string& msg);
[[noreturn]] void throw_invariant(const char* expr, const char* file, int line,
                                  const std::string& msg);
}  // namespace detail

}  // namespace rcp

/// Marks a function noexcept in release builds only — for hot-path
/// operations whose debug builds carry a throwing RCP_EXPECT guard that
/// release builds compile out (e.g. ProcessSet::add).
#ifdef NDEBUG
#define RCP_RELEASE_NOEXCEPT noexcept
#else
#define RCP_RELEASE_NOEXCEPT
#endif

/// Checks a documented precondition of a public interface.
#define RCP_EXPECT(cond, msg)                                             \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::rcp::detail::throw_precondition(#cond, __FILE__, __LINE__, (msg)); \
    }                                                                     \
  } while (false)

/// Checks an internal invariant; failure indicates a library bug.
#define RCP_INVARIANT(cond, msg)                                        \
  do {                                                                  \
    if (!(cond)) {                                                      \
      ::rcp::detail::throw_invariant(#cond, __FILE__, __LINE__, (msg)); \
    }                                                                   \
  } while (false)
