// Plain-text table rendering for the benchmark harnesses, which print the
// paper's analytic series as aligned rows (and optionally CSV).
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace rcp {

/// Builds a column-aligned text table. Cells are strings; numeric helpers
/// format with a fixed precision so rows line up.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Starts a new row; subsequent cell() calls append to it.
  Table& row();
  Table& cell(const std::string& text);
  Table& cell(const char* text);
  Table& cell(double value, int precision = 4);
  Table& cell(std::uint64_t value);
  Table& cell(std::int64_t value);
  Table& cell(int value);

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

  /// Renders with a header rule and two-space column gaps.
  void print(std::ostream& os) const;

  /// Renders as RFC-4180-ish CSV (no quoting needed for our content).
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `precision` digits after the decimal point.
[[nodiscard]] std::string format_double(double value, int precision = 4);

}  // namespace rcp
