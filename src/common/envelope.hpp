// Message envelopes carried by any of the repository's message systems.
//
// The envelope is transport-agnostic: the simulated asynchronous message
// system (sim/) and the real TCP transport (net/) both deliver protocol
// messages in this shape, which is what lets one Process implementation run
// unchanged over either. It therefore lives in common/, below the protocol
// cores, so that core code never depends on a transport layer.
#pragma once

#include <cstdint>

#include "common/bytes.hpp"
#include "common/types.hpp"

namespace rcp {

/// One in-flight message. The message system stamps the true `sender`, which
/// gives the authenticated-identity guarantee the paper's malicious model
/// requires ("the message system must provide a way for correct processes to
/// verify the identity of the sender of each message"): Byzantine processes
/// may lie inside `payload` but cannot forge `sender`.
struct Envelope {
  ProcessId sender = 0;
  ProcessId receiver = 0;
  Bytes payload;
  /// Global step at which the message was sent (for traces/adversaries).
  std::uint64_t sent_at_step = 0;
  /// Monotone sequence number unique across the whole simulation; makes
  /// delivery order independent of container iteration details.
  std::uint64_t seq = 0;
};

}  // namespace rcp

namespace rcp::sim {
// Historical spelling: the envelope began life inside the simulator and the
// whole tree refers to it as sim::Envelope. The alias keeps that spelling
// valid while the definition lives below the protocol cores.
using rcp::Envelope;
}  // namespace rcp::sim
