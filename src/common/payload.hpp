// Small-buffer-optimized message payload.
//
// Every wire message in the repository's protocol families is a handful of
// fixed-width fields (the largest, a slot-wrapped Figure 2 echo, is 23
// bytes), yet the original `Bytes = std::vector<std::byte>` representation
// paid a heap allocation per encode and a deep copy per broadcast
// destination. Payload removes both costs from the simulation hot path:
//
//   * contents up to kInlineCapacity bytes live inline in the object —
//     construction, copy and destruction never touch the heap;
//   * larger contents (multivalued proposals, fuzz payloads) spill to a
//     reference-counted heap block shared copy-on-write, so broadcast
//     fan-out of an oversized payload is a refcount increment per
//     destination instead of a deep copy. The refcount is atomic because
//     scenario objects holding payloads may be copied concurrently by the
//     parallel trial runtime.
//
// Mutating accessors detach (clone) a shared block first, so aliasing is
// never observable; the API is the subset of std::vector<std::byte> the
// codebase uses. Heap spills are counted in a process-wide atomic so tests
// can assert the steady-state hot path performs zero payload allocations.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <initializer_list>
#include <new>
#include <span>
#include <utility>

#include "common/error.hpp"

namespace rcp {

class Payload {
 public:
  using value_type = std::byte;
  using size_type = std::size_t;
  using iterator = std::byte*;
  using const_iterator = const std::byte*;

  /// Bytes stored inline (no heap) — covers every protocol message,
  /// including the multivalued layer's 9-byte slot wrapper around the
  /// largest 14-byte binary-protocol message.
  static constexpr std::size_t kInlineCapacity = 24;

  Payload() noexcept : rep_{}, size_(0), heap_(false) {}

  explicit Payload(std::size_t count, std::byte fill = std::byte{0})
      : Payload() {
    resize(count, fill);
  }

  Payload(std::initializer_list<std::byte> init) : Payload() {
    append(init.begin(), init.size());
  }

  Payload(const std::byte* first, const std::byte* last) : Payload() {
    append(first, static_cast<std::size_t>(last - first));
  }

  explicit Payload(std::span<const std::byte> data) : Payload() {
    append(data.data(), data.size());
  }

  Payload(const Payload& other) noexcept
      : rep_(other.rep_), size_(other.size_), heap_(other.heap_) {
    if (heap_) {
      rep_.heap->refs.fetch_add(1, std::memory_order_relaxed);
    }
  }

  Payload(Payload&& other) noexcept
      : rep_(other.rep_), size_(other.size_), heap_(other.heap_) {
    other.size_ = 0;
    other.heap_ = false;
  }

  Payload& operator=(const Payload& other) noexcept {
    if (this != &other) {
      if (other.heap_) {
        other.rep_.heap->refs.fetch_add(1, std::memory_order_relaxed);
      }
      release();
      rep_ = other.rep_;
      size_ = other.size_;
      heap_ = other.heap_;
    }
    return *this;
  }

  Payload& operator=(Payload&& other) noexcept {
    if (this != &other) {
      release();
      rep_ = other.rep_;
      size_ = other.size_;
      heap_ = other.heap_;
      other.size_ = 0;
      other.heap_ = false;
    }
    return *this;
  }

  ~Payload() { release(); }

  // ---- Observers (never detach) -------------------------------------

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  [[nodiscard]] std::size_t capacity() const noexcept {
    return heap_ ? rep_.heap->capacity : kInlineCapacity;
  }

  /// True if the contents live in a heap block (capacity spill).
  [[nodiscard]] bool on_heap() const noexcept { return heap_; }

  /// True if a heap block is shared with at least one other Payload.
  [[nodiscard]] bool shared() const noexcept {
    return heap_ && rep_.heap->refs.load(std::memory_order_acquire) > 1;
  }

  [[nodiscard]] const std::byte* data() const noexcept { return cdata(); }
  [[nodiscard]] const_iterator begin() const noexcept { return cdata(); }
  [[nodiscard]] const_iterator end() const noexcept { return cdata() + size_; }
  [[nodiscard]] const_iterator cbegin() const noexcept { return cdata(); }
  [[nodiscard]] const_iterator cend() const noexcept { return cdata() + size_; }

  [[nodiscard]] const std::byte& operator[](std::size_t i) const noexcept {
    return cdata()[i];
  }
  [[nodiscard]] const std::byte& front() const noexcept { return cdata()[0]; }
  [[nodiscard]] const std::byte& back() const noexcept {
    return cdata()[size_ - 1];
  }

  [[nodiscard]] std::span<const std::byte> span() const noexcept {
    return {cdata(), size_};
  }

  // ---- Mutating accessors (detach a shared block first) --------------

  [[nodiscard]] std::byte* data() { return unique_data(); }
  [[nodiscard]] iterator begin() { return unique_data(); }
  [[nodiscard]] iterator end() { return unique_data() + size_; }

  [[nodiscard]] std::byte& operator[](std::size_t i) {
    return unique_data()[i];
  }
  [[nodiscard]] std::byte& front() { return unique_data()[0]; }
  [[nodiscard]] std::byte& back() { return unique_data()[size_ - 1]; }

  // ---- Mutators ------------------------------------------------------

  void reserve(std::size_t cap) {
    if (cap > capacity()) {
      reallocate(cap);
    }
  }

  void push_back(std::byte v) {
    if (!heap_ && size_ < kInlineCapacity) {
      rep_.inline_[size_++] = v;
      return;
    }
    grow_for(size_ + 1);
    storage()[size_++] = v;
  }

  void pop_back() noexcept {
    // Shrinking only moves this object's size; shared block bytes are
    // untouched, so no detach is needed.
    --size_;
  }

  void clear() noexcept { size_ = 0; }

  void resize(std::size_t count, std::byte fill = std::byte{0}) {
    if (count <= size_) {
      size_ = static_cast<std::uint32_t>(count);
      return;
    }
    grow_for(count);
    std::memset(storage() + size_, std::to_integer<int>(fill), count - size_);
    size_ = static_cast<std::uint32_t>(count);
  }

  void append(const std::byte* src, std::size_t len) {
    if (len == 0) {
      return;
    }
    grow_for(size_ + len);
    std::memcpy(storage() + size_, src, len);
    size_ += static_cast<std::uint32_t>(len);
  }

  void assign(const std::byte* first, const std::byte* last) {
    clear();
    append(first, static_cast<std::size_t>(last - first));
  }

  /// Append-only insert (the only form the codebase uses). `pos` must be
  /// end(); the range must not alias this payload's own storage.
  void insert(const_iterator pos, const std::byte* first,
              const std::byte* last) {
    RCP_EXPECT(pos == cend(), "Payload::insert supports only append at end()");
    append(first, static_cast<std::size_t>(last - first));
  }

  [[nodiscard]] friend bool operator==(const Payload& a,
                                       const Payload& b) noexcept {
    return a.size_ == b.size_ &&
           (a.size_ == 0 ||
            std::memcmp(a.cdata(), b.cdata(), a.size_) == 0);
  }

  // ---- Allocation accounting ----------------------------------------

  /// Process-wide count of heap blocks ever allocated by Payloads. The
  /// steady-state simulation hot path must not advance this counter for
  /// protocol messages <= kInlineCapacity; tests assert exactly that.
  [[nodiscard]] static std::uint64_t heap_allocation_count() noexcept {
    return heap_allocs_.load(std::memory_order_relaxed);
  }

 private:
  struct HeapBlock {
    explicit HeapBlock(std::uint32_t cap) noexcept : refs(1), capacity(cap) {}
    std::atomic<std::uint32_t> refs;
    std::uint32_t capacity;
    [[nodiscard]] std::byte* bytes() noexcept {
      return reinterpret_cast<std::byte*>(this + 1);
    }
    [[nodiscard]] const std::byte* bytes() const noexcept {
      return reinterpret_cast<const std::byte*>(this + 1);
    }
  };

  [[nodiscard]] static HeapBlock* alloc_block(std::size_t cap) {
    RCP_EXPECT(cap <= UINT32_MAX, "payload exceeds 4 GiB");
    heap_allocs_.fetch_add(1, std::memory_order_relaxed);
    // rcp-lint: allow(hot-alloc) the single counted Payload spill site
    void* raw = ::operator new(sizeof(HeapBlock) + cap);
    // rcp-lint: allow(hot-alloc) placement-construct into the counted block
    return new (raw) HeapBlock(static_cast<std::uint32_t>(cap));
  }

  static void unref(HeapBlock* block) noexcept {
    if (block->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      block->~HeapBlock();
      ::operator delete(block);
    }
  }

  void release() noexcept {
    if (heap_) {
      unref(rep_.heap);
      heap_ = false;
    }
  }

  [[nodiscard]] const std::byte* cdata() const noexcept {
    return heap_ ? rep_.heap->bytes() : rep_.inline_;
  }

  [[nodiscard]] std::byte* storage() noexcept {
    return heap_ ? rep_.heap->bytes() : rep_.inline_;
  }

  /// Writable pointer to (unshared) storage; clones a shared block.
  [[nodiscard]] std::byte* unique_data() {
    if (shared()) {
      reallocate(size_);
    }
    return storage();
  }

  /// Guarantees exclusively-owned storage with capacity >= `need`,
  /// growing geometrically on heap reallocation (append pattern).
  void grow_for(std::size_t need) {
    if (need <= capacity() && !shared()) {
      return;
    }
    const std::size_t doubled = capacity() * 2;
    reallocate(need > doubled ? need : doubled);
  }

  /// Moves contents into exclusively-owned storage of capacity
  /// max(need, size_); inline if it fits, else a fresh heap block.
  void reallocate(std::size_t need) {
    if (need < size_) {
      need = size_;
    }
    if (need <= kInlineCapacity) {
      if (!heap_) {
        return;  // already inline
      }
      HeapBlock* old = rep_.heap;
      std::memcpy(rep_.inline_, old->bytes(), size_);
      heap_ = false;
      unref(old);
      return;
    }
    HeapBlock* fresh = alloc_block(need);
    std::memcpy(fresh->bytes(), cdata(), size_);
    release();
    rep_.heap = fresh;
    heap_ = true;
  }

  union Rep {
    std::byte inline_[kInlineCapacity];
    HeapBlock* heap;
  } rep_;
  std::uint32_t size_;
  bool heap_;

  inline static std::atomic<std::uint64_t> heap_allocs_{0};
};

}  // namespace rcp
