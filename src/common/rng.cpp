#include "common/rng.hpp"

#include <cmath>

namespace rcp {

namespace {
[[nodiscard]] constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  // SplitMix64 expansion guarantees a non-zero xoshiro state for any seed.
  std::uint64_t sm = seed;
  for (auto& word : s_) {
    word = splitmix64(sm);
  }
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) noexcept {
  // Lemire-style rejection to remove modulo bias.
  if (bound == 0) {
    return 0;  // degenerate; callers check their own preconditions
  }
  const std::uint64_t threshold = (~bound + 1) % bound;  // 2^64 mod bound
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(below(span));
}

double Rng::uniform01() noexcept {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::bernoulli(double p) noexcept {
  if (p <= 0.0) {
    return false;
  }
  if (p >= 1.0) {
    return true;
  }
  return uniform01() < p;
}

Rng Rng::split() noexcept {
  return Rng(next());
}

std::vector<std::uint32_t> Rng::sample_without_replacement(
    std::uint32_t universe, std::uint32_t count) {
  std::vector<std::uint32_t> picked;
  picked.reserve(count);
  // Selection sampling (Knuth 3.4.2 algorithm S): O(universe) time and
  // exactly uniform over all C(universe, count) subsets.
  std::uint32_t remaining = count;
  for (std::uint32_t item = 0; item < universe && remaining > 0; ++item) {
    const std::uint64_t pool = universe - item;
    if (below(pool) < remaining) {
      picked.push_back(item);
      --remaining;
    }
  }
  return picked;
}

}  // namespace rcp
