// Fundamental vocabulary types shared by every rcp library.
//
// The paper (Bracha & Toueg, PODC 1983) studies *binary* consensus among n
// fully connected asynchronous processes, so the vocabulary is small: a
// process identifier, a phase number, and a binary value.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <ostream>

namespace rcp {

/// Identifies one of the n processes; ids are dense in [0, n).
using ProcessId = std::uint32_t;

/// Protocol phase counter ("phaseno" in the paper's Figures 1 and 2).
using Phase = std::uint64_t;

/// A binary consensus value.
enum class Value : std::uint8_t { zero = 0, one = 1 };

/// Returns the opposite binary value.
[[nodiscard]] constexpr Value other(Value v) noexcept {
  return v == Value::zero ? Value::one : Value::zero;
}

/// Value as an array index / integer in {0, 1}.
[[nodiscard]] constexpr std::size_t value_index(Value v) noexcept {
  return static_cast<std::size_t>(v);
}

/// Integer {0,1} -> Value. Any nonzero input maps to one.
[[nodiscard]] constexpr Value value_from_int(int i) noexcept {
  return i == 0 ? Value::zero : Value::one;
}

/// Both binary values, for range-for loops over the value domain.
inline constexpr std::array<Value, 2> kBothValues{Value::zero, Value::one};

inline std::ostream& operator<<(std::ostream& os, Value v) {
  return os << (v == Value::zero ? '0' : '1');
}

/// A pair of per-value counters, indexed by Value. Mirrors the paper's
/// `message_count: array[0..1]` and `witness_count: array[0..1]` variables.
struct ValueCounts {
  std::array<std::uint32_t, 2> count{0, 0};

  [[nodiscard]] std::uint32_t& operator[](Value v) noexcept {
    return count[value_index(v)];
  }
  [[nodiscard]] std::uint32_t operator[](Value v) const noexcept {
    return count[value_index(v)];
  }
  [[nodiscard]] std::uint32_t total() const noexcept {
    return count[0] + count[1];
  }
  void reset() noexcept { count = {0, 0}; }

  /// The value with the larger count; ties go to zero, matching the paper's
  /// `if message_count(1) > message_count(0) then value := 1 else value := 0`.
  [[nodiscard]] Value majority() const noexcept {
    return count[1] > count[0] ? Value::one : Value::zero;
  }
};

}  // namespace rcp
