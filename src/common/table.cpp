#include "common/table.hpp"

#include <algorithm>
#include <cstdint>
#include <iomanip>
#include <sstream>

#include "common/error.hpp"

namespace rcp {

std::string format_double(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  RCP_EXPECT(!headers_.empty(), "a table needs at least one column");
}

Table& Table::row() {
  rows_.emplace_back();
  rows_.back().reserve(headers_.size());
  return *this;
}

Table& Table::cell(const std::string& text) {
  RCP_EXPECT(!rows_.empty(), "call row() before cell()");
  RCP_EXPECT(rows_.back().size() < headers_.size(),
             "row has more cells than headers");
  rows_.back().push_back(text);
  return *this;
}

Table& Table::cell(const char* text) {
  return cell(std::string(text));
}

Table& Table::cell(double value, int precision) {
  return cell(format_double(value, precision));
}

Table& Table::cell(std::uint64_t value) {
  return cell(std::to_string(value));
}

Table& Table::cell(std::int64_t value) {
  return cell(std::to_string(value));
}

Table& Table::cell(int value) {
  return cell(std::to_string(value));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& text = c < cells.size() ? cells[c] : std::string{};
      os << std::left << std::setw(static_cast<int>(widths[c])) << text;
      if (c + 1 < headers_.size()) {
        os << "  ";
      }
    }
    os << '\n';
  };
  emit_row(headers_);
  std::size_t rule = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    rule += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  os << std::string(rule, '-') << '\n';
  for (const auto& row : rows_) {
    emit_row(row);
  }
}

void Table::print_csv(std::ostream& os) const {
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) {
        os << ',';
      }
      os << cells[c];
    }
    os << '\n';
  };
  emit_row(headers_);
  for (const auto& row : rows_) {
    emit_row(row);
  }
}

}  // namespace rcp
