// Minimal JSON emitter for the BENCH_*.json / rcp-net-v1 artifacts written
// behind `--json <path>` (see docs/PERF.md, docs/NET.md). Hand-rolled on
// purpose: the reports are flat objects/arrays of numbers and short ASCII
// labels, and the repo takes no third-party dependencies for them. Lives in
// common/ because both the bench harnesses and src/net's report writer use
// it; nothing in src/ may depend on bench/ (see docs/LINT.md, rule `layer`).
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace rcp::bench {

/// Streams syntactically valid JSON with automatic comma placement. Scopes
/// are explicit: begin_object()/end_object(), begin_array()/end_array();
/// inside an object every value must be preceded by key(). Strings are
/// escaped for quotes, backslashes and control characters; non-finite
/// doubles are emitted as null (JSON has no NaN/Inf).
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(os) {}

  void begin_object() {
    separate();
    os_ << '{';
    depth_.push_back(false);
  }
  void end_object() {
    depth_.pop_back();
    os_ << '}';
  }
  void begin_array() {
    separate();
    os_ << '[';
    depth_.push_back(false);
  }
  void end_array() {
    depth_.pop_back();
    os_ << ']';
  }

  void key(std::string_view k) {
    separate();
    quote(k);
    os_ << ':';
    pending_value_ = true;
  }

  void value(std::string_view s) {
    separate();
    quote(s);
  }
  void value(const char* s) { value(std::string_view(s)); }
  void value(bool b) {
    separate();
    os_ << (b ? "true" : "false");
  }
  void value(std::uint64_t v) {
    separate();
    os_ << v;
  }
  void value(std::uint32_t v) { value(static_cast<std::uint64_t>(v)); }
  void value(double v) {
    separate();
    if (!std::isfinite(v)) {
      os_ << "null";
      return;
    }
    const auto flags = os_.flags();
    const auto precision = os_.precision();
    os_.precision(std::numeric_limits<double>::max_digits10);
    os_ << v;
    os_.precision(precision);
    os_.flags(flags);
  }

  template <typename T>
  void field(std::string_view k, T v) {
    key(k);
    value(v);
  }

 private:
  // Emits the comma before the second and later elements of the enclosing
  // scope. A value directly after key() never takes one.
  void separate() {
    if (pending_value_) {
      pending_value_ = false;
      return;
    }
    if (!depth_.empty()) {
      if (depth_.back()) {
        os_ << ',';
      }
      depth_.back() = true;
    }
  }

  void quote(std::string_view s) {
    os_ << '"';
    for (const char c : s) {
      switch (c) {
        case '"':
          os_ << "\\\"";
          break;
        case '\\':
          os_ << "\\\\";
          break;
        case '\n':
          os_ << "\\n";
          break;
        case '\t':
          os_ << "\\t";
          break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            const char* hex = "0123456789abcdef";
            os_ << "\\u00" << hex[(c >> 4) & 0xf] << hex[c & 0xf];
          } else {
            os_ << c;
          }
      }
    }
    os_ << '"';
  }

  std::ostream& os_;
  std::vector<bool> depth_;  // per open scope: has it emitted an element yet
  bool pending_value_ = false;
};

}  // namespace rcp::bench

