// The process abstraction: the paper's atomic-step state machine.
//
// "In an atomic step of the system, a process can try to receive a message,
// perform an arbitrary long local computation, and then send a finite set of
// messages." A Process is therefore a callback object: the message system
// hands it one received message (or phi) per step, and all sends it performs
// through the Context become visible only when the step completes.
//
// These interfaces are deliberately sans-io — no sockets, threads, clocks or
// simulator internals — and live in common/ so the protocol cores (core/,
// extensions/, baselines/) depend only on this layer. The asynchronous
// simulator (sim/) and the TCP transport (net/) each provide a Context and
// drive the same Process implementations.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "common/bytes.hpp"
#include "common/envelope.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

namespace rcp {

/// The interface a process uses to act on the system during one atomic
/// step. Provided by the message system; valid only for the duration of the
/// callback it was passed to.
class Context {
 public:
  virtual ~Context() = default;

  [[nodiscard]] virtual ProcessId self() const noexcept = 0;
  [[nodiscard]] virtual std::uint32_t n() const noexcept = 0;
  [[nodiscard]] virtual std::uint64_t step() const noexcept = 0;

  /// Queues a message for `to`; placed in its buffer when the step ends.
  /// Sending to self is allowed (the paper's protocols use self-sends to
  /// requeue messages from future phases).
  virtual void send(ProcessId to, Bytes payload) = 0;

  /// Queues the same payload for every process 1..n, including self; the
  /// paper's "for all q, 1 <= q <= n, send(q, ...)".
  virtual void broadcast(const Bytes& payload) = 0;

  /// Records this process's one-shot decision. Calling twice with different
  /// values throws InvariantError (the paper: "Once d_p is assigned a value
  /// v, it can not be changed"); calling twice with the same value is a
  /// harmless no-op.
  virtual void decide(Value v) = 0;

  /// This process's private random stream (used by randomized baselines
  /// such as Ben-Or; the Bracha-Toueg protocols are deterministic and never
  /// call this).
  [[nodiscard]] virtual Rng& rng() noexcept = 0;
};

/// A protocol participant. Implementations must be deterministic functions
/// of (local state, received message, Context::rng()) so that simulations
/// replay exactly from a seed.
class Process {
 public:
  virtual ~Process() = default;

  /// Called once before any message delivery; typically performs the
  /// phase-0 broadcast.
  virtual void on_start(Context& ctx) = 0;

  /// Called when receive() returns a message.
  virtual void on_message(Context& ctx, const Envelope& env) = 0;

  /// Called when receive() returns the null value phi. Most protocols
  /// simply retry, i.e. do nothing.
  virtual void on_null(Context& ctx) { static_cast<void>(ctx); }

  /// Current phase number, for metrics and phase-triggered fault
  /// injection. Protocols without a phase structure may return 0.
  [[nodiscard]] virtual Phase phase() const noexcept { return 0; }
};

/// A participant in a lock-step (synchronous round) execution; the sans-io
/// counterpart of Process for the Section 5 initially-dead model. The round
/// substrate itself lives in sim/lockstep.hpp.
class LockstepProcess {
 public:
  virtual ~LockstepProcess() = default;

  /// The payload this process broadcasts in `round` (0-based).
  [[nodiscard]] virtual Bytes broadcast_for_round(std::uint32_t round) = 0;

  /// Delivery of all round-`round` messages from live processes, ordered by
  /// sender id.
  virtual void receive_round(
      std::uint32_t round,
      const std::vector<std::pair<ProcessId, Bytes>>& messages) = 0;

  /// One-shot decision, if reached.
  [[nodiscard]] virtual std::optional<Value> decision() const = 0;
};

}  // namespace rcp

namespace rcp::sim {
// Historical spelling: these interfaces began life inside the simulator and
// the tree refers to them as sim::Process / sim::Context. The aliases keep
// that spelling valid while the definitions live below the protocol cores.
using rcp::Context;
using rcp::LockstepProcess;
using rcp::Process;
}  // namespace rcp::sim
