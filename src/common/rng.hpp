// Deterministic pseudo-random number generation.
//
// All randomness in the library flows from a single user-supplied seed so
// that every simulation run is exactly reproducible. The generator is
// xoshiro256** (Blackman & Vigna), seeded through SplitMix64; both are
// public-domain algorithms reimplemented here to avoid external deps.
//
// The paper's convergence proofs assume a probabilistic message system in
// which every possible (n-k)-message view has a fixed positive probability
// of being the one observed. The simulator realises that assumption by
// drawing uniformly from this generator; see sim/delivery.hpp.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

namespace rcp {

/// SplitMix64 step; used for seeding and for hashing ids into streams.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Deterministic xoshiro256** generator.
///
/// Satisfies std::uniform_random_bit_generator so it can be used with
/// standard <random> distributions, but the member helpers below avoid the
/// standard distributions' implementation-defined (hence non-portable)
/// sequences.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Constructs a generator whose entire sequence is a function of `seed`.
  explicit Rng(std::uint64_t seed) noexcept;

  /// Raw 64 random bits.
  [[nodiscard]] std::uint64_t next() noexcept;

  result_type operator()() noexcept { return next(); }
  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Unbiased uniform draw from [0, bound). Precondition: bound > 0.
  [[nodiscard]] std::uint64_t below(std::uint64_t bound) noexcept;

  /// Uniform draw from [lo, hi] inclusive. Precondition: lo <= hi.
  [[nodiscard]] std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1) with 53 bits of precision.
  [[nodiscard]] double uniform01() noexcept;

  /// True with probability p (p clamped to [0, 1]).
  [[nodiscard]] bool bernoulli(double p) noexcept;

  /// Derives an independent child stream; deterministic in this stream's
  /// state, so `parent.split()` sequences are reproducible.
  [[nodiscard]] Rng split() noexcept;

  /// Fisher-Yates shuffle of `items`.
  template <typename T>
  void shuffle(std::span<T> items) noexcept {
    for (std::size_t i = items.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// A uniformly random subset of size `count` drawn from [0, universe)
  /// without replacement (selection sampling). Precondition:
  /// count <= universe.
  [[nodiscard]] std::vector<std::uint32_t> sample_without_replacement(
      std::uint32_t universe, std::uint32_t count);

 private:
  std::uint64_t s_[4];
};

}  // namespace rcp
