// Streaming statistics and integer histograms used by the experiment
// harnesses to summarise phases-to-decision, message counts, and Markov
// chain Monte-Carlo runs.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <vector>

namespace rcp {

/// Welford's online mean/variance accumulator with min/max tracking.
class RunningStats {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  [[nodiscard]] double sum() const noexcept { return mean_ * static_cast<double>(count_); }

  /// Merges another accumulator into this one (parallel Welford).
  void merge(const RunningStats& other) noexcept;

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Sparse histogram over non-negative integer outcomes (e.g. phase counts).
class Histogram {
 public:
  void add(std::uint64_t value, std::uint64_t weight = 1);

  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] std::uint64_t count_of(std::uint64_t value) const noexcept;
  [[nodiscard]] const std::map<std::uint64_t, std::uint64_t>& buckets()
      const noexcept {
    return buckets_;
  }

  [[nodiscard]] double mean() const noexcept;
  /// Smallest value v such that at least q of the mass is <= v. q in [0,1].
  [[nodiscard]] std::uint64_t quantile(double q) const;
  [[nodiscard]] std::uint64_t max_value() const noexcept;

 private:
  std::map<std::uint64_t, std::uint64_t> buckets_;
  std::uint64_t total_ = 0;
};

/// Quantile of a sample set; sorts a copy. q in [0,1].
[[nodiscard]] double quantile(std::span<const double> samples, double q);

}  // namespace rcp
