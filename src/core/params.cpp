#include "core/params.hpp"

#include <string>

#include "common/error.hpp"

namespace rcp::core {

const char* to_string(FaultModel model) noexcept {
  return model == FaultModel::fail_stop ? "fail-stop" : "malicious";
}

void ConsensusParams::validate(FaultModel model) const {
  RCP_EXPECT(n >= 1, "consensus needs at least one process");
  const std::uint32_t bound = max_resilience(model, n);
  RCP_EXPECT(k <= bound,
             "k = " + std::to_string(k) + " exceeds the " +
                 std::string(to_string(model)) + " resilience bound floor((n-1)/" +
                 (model == FaultModel::fail_stop ? "2" : "3") + ") = " +
                 std::to_string(bound) + " for n = " + std::to_string(n));
}

}  // namespace rcp::core
