#include "core/reliable_broadcast.hpp"

#include "common/error.hpp"

namespace rcp::core {

namespace {
constexpr std::uint8_t kRbTagBase = 20;  // 20 initial, 21 echo, 22 ready
}  // namespace

Bytes RbMsg::encode() const {
  ByteWriter w(2);
  w.u8(static_cast<std::uint8_t>(kRbTagBase + static_cast<std::uint8_t>(kind)))
      .u8(static_cast<std::uint8_t>(value));
  return std::move(w).take();
}

RbMsg RbMsg::decode(const Bytes& payload) {
  ByteReader r(payload);
  const std::uint8_t tag = r.u8();
  if (tag < kRbTagBase || tag > kRbTagBase + 2) {
    throw DecodeError("not a reliable-broadcast message");
  }
  const std::uint8_t raw_value = r.u8();
  r.expect_done();
  if (raw_value > 1) {
    throw DecodeError("value field out of range");
  }
  return RbMsg{.kind = static_cast<RbMsg::Kind>(tag - kRbTagBase),
               .value = value_from_int(raw_value)};
}

std::unique_ptr<ReliableBroadcast> ReliableBroadcast::make(
    ConsensusParams params, ProcessId self, ProcessId designated_sender,
    Value value) {
  params.validate(FaultModel::malicious);
  RCP_EXPECT(self < params.n && designated_sender < params.n,
             "process ids must lie in [0, n)");
  return std::unique_ptr<ReliableBroadcast>(
      // rcp-lint: allow(hot-alloc) factory constructs the process once
      new ReliableBroadcast(params, self, designated_sender, value));
}

ReliableBroadcast::ReliableBroadcast(ConsensusParams params, ProcessId self,
                                     ProcessId designated_sender, Value value)
    : params_(params),
      self_(self),
      sender_(designated_sender),
      value_(value),
      echo_from_{ProcessSet(params.n), ProcessSet(params.n)},
      ready_from_{ProcessSet(params.n), ProcessSet(params.n)} {}

void ReliableBroadcast::on_start(sim::Context& ctx) {
  if (self_ == sender_) {
    ctx.broadcast(RbMsg{.kind = RbMsg::Kind::initial, .value = value_}.encode());
  }
}

void ReliableBroadcast::maybe_send_ready(sim::Context& ctx, Value v) {
  if (ready_sent_.has_value()) {
    return;  // at most one READY per correct process
  }
  ready_sent_ = v;
  ctx.broadcast(RbMsg{.kind = RbMsg::Kind::ready, .value = v}.encode());
}

void ReliableBroadcast::on_message(sim::Context& ctx,
                                   const sim::Envelope& env) {
  RbMsg msg;
  try {
    msg = RbMsg::decode(env.payload);
  } catch (const DecodeError&) {
    return;
  }
  if (env.sender >= params_.n) {
    return;  // no transport produces one; keeps the n-bit quorums indexable
  }
  switch (msg.kind) {
    case RbMsg::Kind::initial: {
      // Only the designated sender's initial is honoured (authenticated
      // identity), and only the first one is echoed.
      if (env.sender != sender_ || echoed_) {
        return;
      }
      echoed_ = true;
      ctx.broadcast(
          RbMsg{.kind = RbMsg::Kind::echo, .value = msg.value}.encode());
      return;
    }
    case RbMsg::Kind::echo: {
      auto& from = echo_from_[value_index(msg.value)];
      // First echo per (sender, value); a sender echoing both values only
      // splits its own weight.
      if (!from.add(env.sender)) {
        return;
      }
      if (from.size() >= params_.echo_acceptance_threshold()) {
        maybe_send_ready(ctx, msg.value);
      }
      return;
    }
    case RbMsg::Kind::ready: {
      auto& from = ready_from_[value_index(msg.value)];
      if (!from.add(env.sender)) {
        return;
      }
      // Amplification: k+1 READYs guarantee one correct READY.
      if (from.size() >= params_.k + 1) {
        maybe_send_ready(ctx, msg.value);
      }
      // Delivery: 2k+1 READYs guarantee k+1 correct READYs, so every
      // correct process will eventually amplify and deliver.
      if (from.size() >= 2 * params_.k + 1 && !delivered_.has_value()) {
        delivered_ = msg.value;
        ctx.decide(msg.value);
      }
      return;
    }
  }
}

}  // namespace rcp::core
