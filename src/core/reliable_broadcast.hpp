// Reliable (consistent) broadcast — the direct descendant of Figure 2's
// initial/echo machinery (Bracha 1987), included as an extension module.
//
// One designated sender broadcasts a value; every correct process:
//   - echoes the sender's initial value (once),
//   - sends READY(v) after more than (n+k)/2 echoes for v,
//   - amplifies: sends READY(v) after k+1 READY(v) from distinct processes,
//   - delivers v after 2k+1 READY(v).
// For k <= floor((n-1)/3):
//   consistency: no two correct processes deliver different values, even if
//     the sender is malicious;
//   totality: if any correct process delivers, all correct processes do;
//   validity: if the sender is correct, everyone delivers its value.
// Delivery is recorded through Context::decide for uniform observability.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "common/bytes.hpp"
#include "common/process.hpp"
#include "common/types.hpp"
#include "core/params.hpp"
#include "core/quorum.hpp"

namespace rcp::core {

/// Wire message for the reliable-broadcast module.
struct RbMsg {
  enum class Kind : std::uint8_t { initial = 0, echo = 1, ready = 2 };
  Kind kind = Kind::initial;
  Value value = Value::zero;

  [[nodiscard]] Bytes encode() const;
  [[nodiscard]] static RbMsg decode(const Bytes& payload);
};

class ReliableBroadcast final : public sim::Process {
 public:
  /// A correct participant. If `self == designated_sender`, `value` is the
  /// payload to broadcast; otherwise `value` is ignored.
  [[nodiscard]] static std::unique_ptr<ReliableBroadcast> make(
      ConsensusParams params, ProcessId self, ProcessId designated_sender,
      Value value = Value::zero);

  void on_start(sim::Context& ctx) override;
  void on_message(sim::Context& ctx, const sim::Envelope& env) override;

  [[nodiscard]] std::optional<Value> delivered() const noexcept {
    return delivered_;
  }
  [[nodiscard]] bool sent_ready() const noexcept {
    return ready_sent_.has_value();
  }

 private:
  ReliableBroadcast(ConsensusParams params, ProcessId self,
                    ProcessId designated_sender, Value value);

  void maybe_send_ready(sim::Context& ctx, Value v);

  ConsensusParams params_;
  ProcessId self_;
  ProcessId sender_;
  Value value_;
  bool echoed_ = false;
  std::optional<Value> ready_sent_;
  std::optional<Value> delivered_;
  // Per-value quorum tallies as flat n-bit sets: membership, insertion and
  // cardinality are O(1), bulk clears run on the word-parallel kernels of
  // core/bitops.hpp, and message handling never allocates (hot-alloc
  // contract, docs/PERF.md "Quorum accounting" / "Word-parallel kernels").
  ProcessSet echo_from_[2];
  ProcessSet ready_from_[2];
};

}  // namespace rcp::core
