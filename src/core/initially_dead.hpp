// The Section 5 weak-bivalence protocol for initially-dead processes.
//
// The paper notes (footnote of Section 5) that with its weaker
// interpretation of bivalence there is a consensus protocol tolerating
// *any* number of initially-dead processes: construct the transitive
// closure G+ of the "heard-from" graph as in [Fisc83]; if G+ turns out
// strongly connected and contains all the processes, everyone will know it
// and decides an agreed bivalent function of all the inputs; otherwise
// everyone decides 0.
//
// We realise the construction in the lock-step round substrate
// (sim/lockstep.hpp) in two rounds:
//   round 0: broadcast own (id, input);
//   round 1: broadcast the set of (id, input) pairs heard in round 0.
// After round 1 every live process assembles the directed graph G with an
// edge q -> p whenever p reported hearing q, computes G+, and decides:
//   - majority of all n inputs (ties -> 1) if G+ is strongly connected and
//     spans all n processes — only possible when nobody is dead;
//   - 0 otherwise.
// The decision function of the all-correct case is bivalent; any death
// forces 0 — exactly the paper's weak bivalence.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/process.hpp"
#include "common/types.hpp"

namespace rcp::core {

/// Reflexive-transitive closure of a directed adjacency matrix
/// (Floyd-Warshall). adj[i][j] == true means an edge i -> j.
[[nodiscard]] std::vector<std::vector<bool>> transitive_closure(
    std::vector<std::vector<bool>> adj);

/// True if the closure is strongly connected over all vertices.
[[nodiscard]] bool closure_strongly_connected(
    const std::vector<std::vector<bool>>& closure);

class InitiallyDeadConsensus final : public sim::LockstepProcess {
 public:
  InitiallyDeadConsensus(std::uint32_t n, ProcessId self, Value input);

  [[nodiscard]] Bytes broadcast_for_round(std::uint32_t round) override;
  void receive_round(
      std::uint32_t round,
      const std::vector<std::pair<ProcessId, Bytes>>& messages) override;
  [[nodiscard]] std::optional<Value> decision() const override {
    return decision_;
  }

  /// The agreed bivalent function g of the all-correct case: majority of
  /// the inputs, ties to 1 (so g is onto {0,1} for every n >= 1).
  [[nodiscard]] static Value bivalent_function(const std::vector<Value>& inputs);

 private:
  std::uint32_t n_;
  ProcessId self_;
  Value input_;
  /// (id, input) pairs heard in round 0, self included.
  std::vector<std::pair<ProcessId, Value>> heard_;
  std::optional<Value> decision_;
};

}  // namespace rcp::core
