// Consensus parameters and the paper's resilience bounds and thresholds.
//
// All of the paper's quorum arithmetic is strict real-number comparison
// ("more than n/2", "more than (n+k)/2"); the helpers below express those
// thresholds in exact integer arithmetic so no floor/rounding bugs can
// creep into the protocols.
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace rcp::core {

/// Which failure behaviour the run must tolerate.
enum class FaultModel : std::uint8_t {
  fail_stop,  ///< processes may only die, silently (Section 2)
  malicious,  ///< processes may send false/contradictory messages (Section 3)
};

[[nodiscard]] const char* to_string(FaultModel model) noexcept;

/// Maximum k for which a k-resilient protocol exists (Theorems 1-4):
/// floor((n-1)/2) for fail-stop, floor((n-1)/3) for malicious.
[[nodiscard]] constexpr std::uint32_t max_resilience(FaultModel model,
                                                     std::uint32_t n) noexcept {
  return model == FaultModel::fail_stop ? (n - 1) / 2 : (n - 1) / 3;
}

/// (n, k): system size and the resilience target.
struct ConsensusParams {
  std::uint32_t n = 0;
  std::uint32_t k = 0;

  /// Throws PreconditionError unless 0 <= k <= max_resilience(model, n)
  /// and n >= 1. Protocol factories call this; the lower-bound experiment
  /// (E7) uses the *_unchecked factories to run beyond the bound on
  /// purpose.
  void validate(FaultModel model) const;

  /// Messages a process waits for in each phase: n - k.
  [[nodiscard]] constexpr std::uint32_t wait_quorum() const noexcept {
    return n - k;
  }

  /// Fig 1: a message is a *witness* if its cardinality exceeds n/2.
  [[nodiscard]] constexpr bool is_witness_cardinality(
      std::uint32_t cardinality) const noexcept {
    return 2ULL * cardinality > n;
  }

  /// Fig 1: decide once more than k witnesses for one value were seen.
  [[nodiscard]] constexpr bool witnesses_decide(
      std::uint32_t witness_count) const noexcept {
    return witness_count > k;
  }

  /// Fig 2: an echoed message is *accepted* at exactly this many echoes
  /// (the smallest integer strictly greater than (n+k)/2).
  [[nodiscard]] constexpr std::uint32_t echo_acceptance_threshold()
      const noexcept {
    return (n + k) / 2 + 1;
  }

  /// Fig 2 / majority variant: decide when the count of accepted messages
  /// with one value strictly exceeds (n+k)/2.
  [[nodiscard]] constexpr bool accepted_count_decides(
      std::uint32_t count) const noexcept {
    return 2ULL * count > static_cast<std::uint64_t>(n) + k;
  }

  /// Bracha reliable broadcast: forward our own READY once k+1 matching
  /// readies were seen (at least one is from a correct process).
  [[nodiscard]] constexpr std::uint32_t ready_amplification_threshold()
      const noexcept {
    return k + 1;
  }

  /// Bracha reliable broadcast: deliver once 2k+1 matching readies were
  /// seen (at least k+1 correct readies survive any k crashes).
  [[nodiscard]] constexpr std::uint32_t ready_delivery_threshold()
      const noexcept {
    return 2 * k + 1;
  }
};

}  // namespace rcp::core
