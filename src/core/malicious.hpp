// Figure 2: the k-resilient consensus protocol for the malicious case,
// k <= floor((n-1)/3) (Theorem 4).
//
// Each phase a process broadcasts its state in an *initial* message; every
// process echoes every fresh initial it receives; a state is accepted only
// after more than (n+k)/2 echoes (see EchoEngine). A process waits for n-k
// accepted messages per phase, adopts the majority of the accepted values,
// and decides i upon accepting more than (n+k)/2 messages with value i.
//
// As in the paper, processes never exit the loop after deciding — they keep
// participating, which is what lets slower correct processes assemble the
// quorums they need. The simulation driver simply stops once every correct
// process has decided.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>

#include "common/process.hpp"
#include "common/types.hpp"
#include "core/echo_engine.hpp"
#include "core/params.hpp"

namespace rcp::core {

class MaliciousConsensus final : public sim::Process {
 public:
  /// Validating factory: throws unless k <= floor((n-1)/3).
  [[nodiscard]] static std::unique_ptr<MaliciousConsensus> make(
      ConsensusParams params, Value initial_value);

  /// For lower-bound experiments only: skips the resilience-bound check.
  [[nodiscard]] static std::unique_ptr<MaliciousConsensus> make_unchecked(
      ConsensusParams params, Value initial_value);

  void on_start(sim::Context& ctx) override;
  void on_message(sim::Context& ctx, const sim::Envelope& env) override;
  [[nodiscard]] Phase phase() const noexcept override { return phaseno_; }

  // White-box observers for tests and experiment harnesses.
  [[nodiscard]] Value value() const noexcept { return value_; }
  [[nodiscard]] std::optional<Value> decision() const noexcept {
    return decision_;
  }
  [[nodiscard]] const ValueCounts& accepted_counts() const noexcept {
    return message_count_;
  }
  [[nodiscard]] const EchoEngine& engine() const noexcept { return engine_; }

 private:
  MaliciousConsensus(ConsensusParams params, Value initial_value);

  /// Applies a batch of acceptance events, completing phases as they fill.
  /// The span may alias the engine's replay buffer; each advance() call
  /// replaces it with the fresh buffer before anything is read again.
  void consume_accepts(sim::Context& ctx,
                       std::span<const EchoEngine::Accept> accepts);

  ConsensusParams params_;
  Value value_;
  Phase phaseno_ = 0;
  ValueCounts message_count_;  ///< accepted messages, current phase
  EchoEngine engine_;
  std::optional<Value> decision_;
};

}  // namespace rcp::core
