// The initial/echo acceptance machinery of Figure 2 — the ancestor of
// Bracha's consistent broadcast.
//
// A process's phase-t state is *accepted* at a receiver only after more
// than (n+k)/2 distinct processes echoed it. The paper proves that two
// correct processes can then never accept different values from the same
// origin in the same phase, because two such quorums would force a correct
// process to echo both values, which correct processes never do.
//
// The engine encapsulates all bookkeeping a correct process performs:
//  - authenticated-origin check on initial messages (the model makes sender
//    identity verifiable; an initial message claiming a different origin is
//    a forgery and is dropped),
//  - at-most-one-echo deduplication per (echoer, origin, phase),
//  - per-phase echo counting with single-shot acceptance at the threshold,
//  - deferral of echoes for future phases (the pseudocode's self-requeue
//    device, implemented as an internal buffer so the original echoer's
//    identity survives the wait — a literal self-send would overwrite it).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "common/types.hpp"
#include "core/messages.hpp"
#include "core/params.hpp"

namespace rcp::core {

class EchoEngine {
 public:
  explicit EchoEngine(ConsensusParams params) noexcept : params_(params) {}

  /// An acceptance event: `origin`'s phase-state was accepted with `value`.
  struct Accept {
    ProcessId origin = 0;
    Value value = Value::zero;
  };

  /// Result of feeding one wire message into the engine.
  struct Outcome {
    /// Set if the input was a fresh initial message: the echo every correct
    /// process must broadcast in response.
    std::optional<EchoProtocolMsg> echo_to_broadcast;
    /// Set if this message made some (origin, value) cross the acceptance
    /// threshold in the current phase.
    std::optional<Accept> accepted;
  };

  /// Feeds a decoded message received from authenticated `sender` while the
  /// caller is in `current_phase`.
  [[nodiscard]] Outcome handle(ProcessId sender, const EchoProtocolMsg& msg,
                               Phase current_phase);

  /// Advances to a new phase: clears the per-phase echo tallies and replays
  /// deferred echoes addressed to `new_phase`. Returns the acceptance
  /// events the replay produced, in original arrival order.
  [[nodiscard]] std::vector<Accept> advance(Phase new_phase);

  /// Echo tally for (origin, value) in the current phase (test observer).
  [[nodiscard]] std::uint32_t echo_count(ProcessId origin,
                                         Value value) const noexcept;

  /// Number of echoes parked for phases beyond the current one.
  [[nodiscard]] std::size_t deferred_count() const noexcept {
    return deferred_.size();
  }

  /// Size of the echo dedup set (memory-bound observability: advance()
  /// reclaims entries for past phases).
  [[nodiscard]] std::size_t echo_dedup_size() const noexcept {
    return seen_echo_.size();
  }

 private:
  struct DeferredEcho {
    ProcessId origin = 0;
    Value value = Value::zero;
    Phase phase = 0;
  };

  /// Counts one current-phase echo; returns an Accept if the threshold was
  /// crossed by exactly this echo.
  [[nodiscard]] std::optional<Accept> tally(ProcessId origin, Value value);

  ConsensusParams params_;
  /// (origin, phase) pairs whose initial message was already echoed.
  std::set<std::pair<ProcessId, Phase>> seen_initial_;
  /// (echoer, origin, phase) triples already processed.
  std::set<std::tuple<ProcessId, ProcessId, Phase>> seen_echo_;
  /// Current-phase tallies: (origin, value) -> echo count.
  std::map<std::pair<ProcessId, std::uint8_t>, std::uint32_t> counts_;
  std::vector<DeferredEcho> deferred_;
};

}  // namespace rcp::core
