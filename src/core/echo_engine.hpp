// The initial/echo acceptance machinery of Figure 2 — the ancestor of
// Bracha's consistent broadcast.
//
// A process's phase-t state is *accepted* at a receiver only after more
// than (n+k)/2 distinct processes echoed it. The paper proves that two
// correct processes can then never accept different values from the same
// origin in the same phase, because two such quorums would force a correct
// process to echo both values, which correct processes never do.
//
// The engine encapsulates all bookkeeping a correct process performs:
//  - authenticated-origin check on initial messages (the model makes sender
//    identity verifiable; an initial message claiming a different origin is
//    a forgery and is dropped),
//  - at-most-one-echo deduplication per (echoer, origin, phase),
//  - per-phase echo counting with single-shot acceptance at the threshold,
//  - deferral of echoes for future phases (the pseudocode's self-requeue
//    device, implemented as an internal buffer so the original echoer's
//    identity survives the wait — a literal self-send would overwrite it).
//
// The bookkeeping is flat and allocation-free in steady state (the repo's
// hot-alloc contract, docs/PERF.md "Quorum accounting"): echo dedup lives
// in a BitRows matrix indexed by (phase mod window, origin) with the echoer
// as the bit, tallies are struct-of-arrays counter lanes (one contiguous
// cache-line-aligned lane per value, padded so lanes never share a line),
// and the deferred buffer is a recycling ring compacted in place. The
// per-echo fast path — bounds checks, one dedup bit test-and-set, one lane
// increment against the Figure-2 threshold — is defined here in the header
// so callers' message loops inline it whole; the rare cases a flat window
// cannot index exactly (echoes deferred beyond the window, out-of-order
// initial phases) spill to small exact side ledgers behind cold out-of-line
// calls, so the observable semantics match the node-based containers they
// replaced bit for bit (pinned by the trace-digest goldens). Bulk work —
// phase-window reclamation, tally resets — runs on the word-parallel
// kernels of core/bitops.hpp.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"
#include "core/bitops.hpp"
#include "core/messages.hpp"
#include "core/params.hpp"
#include "core/quorum.hpp"

namespace rcp::core {

class EchoEngine {
 public:
  explicit EchoEngine(ConsensusParams params);

  /// An acceptance event: `origin`'s phase-state was accepted with `value`.
  struct Accept {
    ProcessId origin = 0;
    Value value = Value::zero;
  };

  /// Result of feeding one wire message into the engine.
  struct Outcome {
    /// Set if the input was a fresh initial message: the echo every correct
    /// process must broadcast in response.
    std::optional<EchoProtocolMsg> echo_to_broadcast;
    /// Set if this message made some (origin, value) cross the acceptance
    /// threshold in the current phase.
    std::optional<Accept> accepted;
  };

  /// Feeds a decoded message received from authenticated `sender` while the
  /// caller is in `current_phase`. Messages naming an origin outside
  /// [0, n) are dropped up front: correct processes only ever echo real
  /// process ids, so a fabricated origin can never assemble an acceptance
  /// quorum — rejecting it early is outcome-identical and keeps the flat
  /// tables indexable by origin.
  ///
  /// Defined inline: this is the per-message hot path, and at bench scale
  /// the cross-TU call (spilled registers, reloaded loop invariants) costs
  /// as much as the bookkeeping itself.
  [[nodiscard]] Outcome handle(ProcessId sender, const EchoProtocolMsg& msg,
                               Phase current_phase) {
    Outcome out;
    // The wire format does not bound `from`; a fabricated origin >= n can
    // never be accepted (correct processes never echo it, and the k
    // possible Byzantine echoes are below any quorum), so drop it before it
    // can touch an origin-indexed table.
    if (msg.from >= params_.n) {
      return out;
    }
    if (!msg.is_echo) {
      handle_initial(out, sender, msg);
      return out;
    }
    // Stale echoes are dropped without touching the dedup table: recording
    // them would let a Byzantine process grow our memory without bound by
    // replaying old-phase traffic.
    if (msg.phase < current_phase) {
      return out;
    }
    // Mirror image of the origin bound above: n is the whole id space, so
    // an out-of-range echoer cannot occur through any transport; dropping
    // is outcome-identical and keeps the bit index in range.
    if (sender >= params_.n) {
      return out;
    }
    if (msg.phase >= window_base_ &&
        msg.phase - window_base_ < kPhaseWindow) [[likely]] {
      // At most one echo per (echoer, origin, phase) is processed,
      // regardless of value — so a correct receiver never counts two echoes
      // from the same echoer about the same origin and phase.
      if (!echo_window_.test_and_set(window_row(msg.phase, msg.from),
                                     sender)) {
        return out;
      }
      ++slot_live_bits_[msg.phase & (kPhaseWindow - 1)];
      if (msg.phase > current_phase) [[unlikely]] {
        defer_echo(msg);
        return out;
      }
      out.accepted = tally(msg.from, msg.value);
      return out;
    }
    handle_echo_outside_window(out, sender, msg, current_phase);
    return out;
  }

  /// Advances to a new phase: clears the per-phase echo tallies, reclaims
  /// dedup slots for phases now in the past, and replays deferred echoes
  /// addressed to `new_phase`. Returns the acceptance events the replay
  /// produced, in original arrival order; the view aliases an internal
  /// buffer and is valid until the next advance() call. Phases must be
  /// advanced monotonically.
  [[nodiscard]] std::span<const Accept> advance(Phase new_phase);

  /// Echo tally for (origin, value) in the current phase (test observer).
  [[nodiscard]] std::uint32_t echo_count(ProcessId origin,
                                         Value value) const noexcept;

  /// Number of echoes parked for phases beyond the current one.
  [[nodiscard]] std::size_t deferred_count() const noexcept {
    return deferred_.size();
  }

  /// Number of live echo dedup entries (memory-bound observability:
  /// advance() reclaims entries for past phases). Maintained incrementally
  /// — per-slot live-bit counters bumped on every fresh dedup bit, zeroed
  /// with their slot — so this is O(1); debug builds cross-check against a
  /// full popcount scan of the window.
  [[nodiscard]] std::size_t echo_dedup_size() const RCP_RELEASE_NOEXCEPT {
    std::size_t live = 0;
    for (const std::size_t slot : slot_live_bits_) {
      live += slot;
    }
#ifndef NDEBUG
    RCP_INVARIANT(live == echo_window_.popcount_all(),
                  "incremental live-bit count matches window popcount");
#endif
    return live + echo_overflow_.size();
  }

  /// Entries currently spilled past the flat dedup window (exact overflow
  /// ledger); nonzero only when peers run more than kPhaseWindow phases
  /// ahead — a coverage signal the schedule fuzzer watches for.
  [[nodiscard]] std::size_t echo_overflow_size() const noexcept {
    return echo_overflow_.size();
  }

  /// Bytes retained across all internal tables (flat-memory observability;
  /// counts capacity, so it reflects the steady-state high-water mark).
  [[nodiscard]] std::size_t memory_bytes() const noexcept;

 private:
  /// Dedup slots cover phases [window_base_, window_base_ + kPhaseWindow);
  /// beyond that, entries go to the exact overflow ledger. Power of two so
  /// the slot index is a mask. In a run the window only ever needs two live
  /// phases (current and next) — four slots leave slack for skewed peers.
  static constexpr Phase kPhaseWindow = 4;

  struct DeferredEcho {
    ProcessId origin = 0;
    Value value = Value::zero;
    Phase phase = 0;
  };

  /// An echo dedup entry for a phase outside the bitset window.
  struct OverflowEntry {
    ProcessId echoer = 0;
    ProcessId origin = 0;
    Phase phase = 0;
  };

  /// Counts one current-phase echo; returns an Accept if the threshold was
  /// crossed by exactly this echo. One increment in the value's SoA counter
  /// lane; the acceptance threshold is loop-invariant and inlines to a
  /// constant comparison.
  [[nodiscard]] std::optional<Accept> tally(ProcessId origin, Value value) {
    const std::uint32_t count = ++tally_lanes_[lane_index(origin, value)];
    if (count == params_.echo_acceptance_threshold()) {
      return Accept{.origin = origin, .value = value};
    }
    return std::nullopt;
  }

  /// Index of (origin, value) in the SoA tally lanes: lane `value`, slot
  /// `origin`; lanes are padded to whole cache lines (tally_stride_).
  [[nodiscard]] std::size_t lane_index(ProcessId origin,
                                       Value value) const noexcept {
    return value_index(value) * tally_stride_ + origin;
  }

  /// Cold path: initial-message forgery check + freshness ledger.
  void handle_initial(Outcome& out, ProcessId sender,
                      const EchoProtocolMsg& msg);

  /// Cold path: dedup + defer/tally for echoes whose phase lies outside
  /// the flat window (exact overflow-ledger semantics).
  void handle_echo_outside_window(Outcome& out, ProcessId sender,
                                  const EchoProtocolMsg& msg,
                                  Phase current_phase);

  /// Cold path: parks a fresh future-phase echo in the deferred ring.
  void defer_echo(const EchoProtocolMsg& msg);

  /// Exact `seen_initial_` set semantics over flat state: true (and
  /// records) when (origin, phase) was not yet seen.
  [[nodiscard]] bool initial_is_fresh(ProcessId origin, Phase phase);

  /// Row of echo_window_ holding phase's echoer bitset for `origin`.
  [[nodiscard]] std::size_t window_row(Phase phase,
                                       ProcessId origin) const noexcept {
    return static_cast<std::size_t>(phase & (kPhaseWindow - 1)) * params_.n +
           origin;
  }

  ConsensusParams params_;
  Phase window_base_ = 0;

  /// Initial-message ledger: per origin, phases [0, initial_next_[o]) are
  /// all seen (the contiguous watermark a correct origin produces), and
  /// initial_sparse_ holds the out-of-order exceptions exactly. Watermark
  /// absorption keeps the sparse ledger empty against correct traffic.
  std::vector<Phase> initial_next_;
  std::vector<std::pair<ProcessId, Phase>> initial_sparse_;

  /// Echo dedup: kPhaseWindow * n rows of n bits; row (slot, origin), bit
  /// echoer. Plus the exact overflow ledger for beyond-window phases.
  BitRows echo_window_;
  std::vector<OverflowEntry> echo_overflow_;

  /// Live dedup bits per window slot, maintained incrementally (bumped on
  /// every fresh test_and_set, zeroed when the slot's rows are reclaimed)
  /// so echo_dedup_size() never rescans the window.
  std::size_t slot_live_bits_[kPhaseWindow] = {};

  /// Current-phase tallies in struct-of-arrays form: lane v (a contiguous,
  /// cache-line-aligned run of tally_stride_ uint32 counters) holds every
  /// origin's tally for value v. Replaces the interleaved ValueCounts
  /// array: threshold scans touch one value's counters as one contiguous
  /// stream, and a phase reset is a single flat fill.
  bitops::AlignedVector<std::uint32_t> tally_lanes_;
  std::size_t tally_stride_ = 0;

  /// Recycling ring of future-phase echoes, compacted in place by
  /// advance(); order is arrival order.
  std::vector<DeferredEcho> deferred_;

  /// Reused advance() result buffer; the returned span aliases it.
  std::vector<Accept> replayed_;
};

}  // namespace rcp::core
