// The initial/echo acceptance machinery of Figure 2 — the ancestor of
// Bracha's consistent broadcast.
//
// A process's phase-t state is *accepted* at a receiver only after more
// than (n+k)/2 distinct processes echoed it. The paper proves that two
// correct processes can then never accept different values from the same
// origin in the same phase, because two such quorums would force a correct
// process to echo both values, which correct processes never do.
//
// The engine encapsulates all bookkeeping a correct process performs:
//  - authenticated-origin check on initial messages (the model makes sender
//    identity verifiable; an initial message claiming a different origin is
//    a forgery and is dropped),
//  - at-most-one-echo deduplication per (echoer, origin, phase),
//  - per-phase echo counting with single-shot acceptance at the threshold,
//  - deferral of echoes for future phases (the pseudocode's self-requeue
//    device, implemented as an internal buffer so the original echoer's
//    identity survives the wait — a literal self-send would overwrite it).
//
// The bookkeeping is flat and allocation-free in steady state (the repo's
// hot-alloc contract, docs/PERF.md "Quorum accounting"): echo dedup lives
// in a BitRows matrix indexed by (phase mod window, origin) with the echoer
// as the bit, tallies are a dense per-origin ValueCounts array, and the
// deferred buffer is a recycling ring compacted in place. The rare cases a
// flat window cannot index exactly — echoes deferred beyond the window,
// out-of-order initial phases — spill to small exact side ledgers, so the
// observable semantics match the node-based containers they replaced
// bit for bit (pinned by the trace-digest goldens).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "core/messages.hpp"
#include "core/params.hpp"
#include "core/quorum.hpp"

namespace rcp::core {

class EchoEngine {
 public:
  explicit EchoEngine(ConsensusParams params);

  /// An acceptance event: `origin`'s phase-state was accepted with `value`.
  struct Accept {
    ProcessId origin = 0;
    Value value = Value::zero;
  };

  /// Result of feeding one wire message into the engine.
  struct Outcome {
    /// Set if the input was a fresh initial message: the echo every correct
    /// process must broadcast in response.
    std::optional<EchoProtocolMsg> echo_to_broadcast;
    /// Set if this message made some (origin, value) cross the acceptance
    /// threshold in the current phase.
    std::optional<Accept> accepted;
  };

  /// Feeds a decoded message received from authenticated `sender` while the
  /// caller is in `current_phase`. Messages naming an origin outside
  /// [0, n) are dropped up front: correct processes only ever echo real
  /// process ids, so a fabricated origin can never assemble an acceptance
  /// quorum — rejecting it early is outcome-identical and keeps the flat
  /// tables indexable by origin.
  [[nodiscard]] Outcome handle(ProcessId sender, const EchoProtocolMsg& msg,
                               Phase current_phase);

  /// Advances to a new phase: clears the per-phase echo tallies, reclaims
  /// dedup slots for phases now in the past, and replays deferred echoes
  /// addressed to `new_phase`. Returns the acceptance events the replay
  /// produced, in original arrival order; the view aliases an internal
  /// buffer and is valid until the next advance() call. Phases must be
  /// advanced monotonically.
  [[nodiscard]] std::span<const Accept> advance(Phase new_phase);

  /// Echo tally for (origin, value) in the current phase (test observer).
  [[nodiscard]] std::uint32_t echo_count(ProcessId origin,
                                         Value value) const noexcept;

  /// Number of echoes parked for phases beyond the current one.
  [[nodiscard]] std::size_t deferred_count() const noexcept {
    return deferred_.size();
  }

  /// Number of live echo dedup entries (memory-bound observability:
  /// advance() reclaims entries for past phases).
  [[nodiscard]] std::size_t echo_dedup_size() const noexcept {
    return echo_window_.popcount_all() + echo_overflow_.size();
  }

  /// Entries currently spilled past the flat dedup window (exact overflow
  /// ledger); nonzero only when peers run more than kPhaseWindow phases
  /// ahead — a coverage signal the schedule fuzzer watches for.
  [[nodiscard]] std::size_t echo_overflow_size() const noexcept {
    return echo_overflow_.size();
  }

  /// Bytes retained across all internal tables (flat-memory observability;
  /// counts capacity, so it reflects the steady-state high-water mark).
  [[nodiscard]] std::size_t memory_bytes() const noexcept;

 private:
  /// Dedup slots cover phases [window_base_, window_base_ + kPhaseWindow);
  /// beyond that, entries go to the exact overflow ledger. Power of two so
  /// the slot index is a mask. In a run the window only ever needs two live
  /// phases (current and next) — four slots leave slack for skewed peers.
  static constexpr Phase kPhaseWindow = 4;

  struct DeferredEcho {
    ProcessId origin = 0;
    Value value = Value::zero;
    Phase phase = 0;
  };

  /// An echo dedup entry for a phase outside the bitset window.
  struct OverflowEntry {
    ProcessId echoer = 0;
    ProcessId origin = 0;
    Phase phase = 0;
  };

  /// Counts one current-phase echo; returns an Accept if the threshold was
  /// crossed by exactly this echo.
  [[nodiscard]] std::optional<Accept> tally(ProcessId origin, Value value);

  /// Records (echoer, origin, phase) in the dedup tables; returns true when
  /// the triple was not yet present.
  [[nodiscard]] bool record_echo(ProcessId echoer, ProcessId origin,
                                 Phase phase);

  /// Exact `seen_initial_` set semantics over flat state: true (and
  /// records) when (origin, phase) was not yet seen.
  [[nodiscard]] bool initial_is_fresh(ProcessId origin, Phase phase);

  /// Row of echo_window_ holding phase's echoer bitset for `origin`.
  [[nodiscard]] std::size_t window_row(Phase phase,
                                       ProcessId origin) const noexcept {
    return static_cast<std::size_t>(phase & (kPhaseWindow - 1)) * params_.n +
           origin;
  }

  ConsensusParams params_;
  Phase window_base_ = 0;

  /// Initial-message ledger: per origin, phases [0, initial_next_[o]) are
  /// all seen (the contiguous watermark a correct origin produces), and
  /// initial_sparse_ holds the out-of-order exceptions exactly. Watermark
  /// absorption keeps the sparse ledger empty against correct traffic.
  std::vector<Phase> initial_next_;
  std::vector<std::pair<ProcessId, Phase>> initial_sparse_;

  /// Echo dedup: kPhaseWindow * n rows of n bits; row (slot, origin), bit
  /// echoer. Plus the exact overflow ledger for beyond-window phases.
  BitRows echo_window_;
  std::vector<OverflowEntry> echo_overflow_;

  /// Current-phase tallies, dense by origin.
  std::vector<ValueCounts> counts_;

  /// Recycling ring of future-phase echoes, compacted in place by
  /// advance(); order is arrival order.
  std::vector<DeferredEcho> deferred_;

  /// Reused advance() result buffer; the returned span aliases it.
  std::vector<Accept> replayed_;
};

}  // namespace rcp::core
