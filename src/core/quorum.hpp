// Flat, bit-level quorum accounting primitives for the Byzantine hot path.
//
// The malicious-case protocols count *distinct* processes: distinct echoers
// per (origin, phase) in Figure 2, distinct echo/ready senders per value in
// reliable broadcast. Process ids are dense in [0, n), so each such set is
// exactly an n-bit bitset — one cache line up to n = 512 — and membership,
// insertion and cardinality are single-word operations instead of red-black
// tree walks. These two containers are the whole vocabulary:
//
//  - ProcessSet: one n-capacity set of process ids with an incrementally
//    maintained cardinality (replaces std::set<ProcessId> quorums).
//  - BitRows: a rows x bits matrix in one flat allocation, row = one echoer
//    set (replaces std::set<(echoer, origin, phase)> dedup sets; the row
//    index encodes (phase-window slot, origin)).
//
// Per-bit operations stay single-word and inline; every bulk operation —
// row-span clears, bulk popcounts, cross-matrix copies, set union and
// enumeration — goes through the word-parallel kernels in core/bitops.hpp,
// which dispatch to the AVX2 backend when available (bit-identical either
// way). Both containers allocate exactly once, at construction; every
// subsequent operation is allocation-free, which is what lets the hot-alloc
// lint rule and the operator-new counting tests cover the whole echo path.
// Layout details: docs/PERF.md ("Quorum accounting", "Word-parallel
// kernels").
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"
#include "core/bitops.hpp"

namespace rcp::core {

/// A fixed-capacity set of process ids backed by bit words, with O(1)
/// membership, insertion, and cardinality. Capacity is set once at
/// construction; ids must lie in [0, capacity).
class ProcessSet {
 public:
  ProcessSet() = default;
  explicit ProcessSet(std::uint32_t capacity)
      : words_((capacity + 63) / 64, 0) {}

  /// Inserts `id`; returns true when it was not already present.
  bool add(ProcessId id) RCP_RELEASE_NOEXCEPT {
#ifndef NDEBUG
    // Debug builds fail loudly on an out-of-capacity id (a caller-side
    // layout bug); release builds keep the unchecked single-word fast path.
    RCP_EXPECT((id >> 6) < words_.size(), "ProcessSet id within capacity");
#endif
    std::uint64_t& w = words_[id >> 6];
    const std::uint64_t bit = 1ULL << (id & 63);
    if ((w & bit) != 0) {
      return false;
    }
    w |= bit;
    ++size_;
    return true;
  }

  [[nodiscard]] bool contains(ProcessId id) const noexcept {
    return (words_[id >> 6] & (1ULL << (id & 63))) != 0;
  }

  /// Number of ids present (maintained incrementally, no popcount scan).
  [[nodiscard]] std::uint32_t size() const noexcept { return size_; }

  void clear() noexcept {
    bitops::fill_words(std::span<std::uint64_t>(words_), 0);
    size_ = 0;
  }

  /// Set union: adds every id of `other` (same capacity required). One
  /// word-parallel OR sweep plus one bulk popcount for the cardinality.
  void merge(const ProcessSet& other) {
    RCP_EXPECT(other.words_.size() == words_.size(),
               "ProcessSet merge requires matching capacity");
    bitops::or_words(std::span<std::uint64_t>(words_),
                     std::span<const std::uint64_t>(other.words_));
    size_ = static_cast<std::uint32_t>(
        bitops::popcount_words(std::span<const std::uint64_t>(words_)));
  }

  /// Calls `fn(id)` for every member, ascending.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    bitops::for_each_set_bit(
        std::span<const std::uint64_t>(words_), [&fn](std::size_t bit) {
          fn(static_cast<ProcessId>(bit));
        });
  }

  /// The raw bit words (test / kernel-equivalence observer).
  [[nodiscard]] std::span<const std::uint64_t> words() const noexcept {
    return words_;
  }

 private:
  std::vector<std::uint64_t> words_;
  std::uint32_t size_ = 0;
};

/// A rows x bits bit matrix in a single flat allocation. Row r is an
/// independent bit set of `bits` capacity; rows are contiguous, so a span
/// of consecutive rows clears with one word-parallel fill. Used as the echo
/// dedup table: row = (phase-window slot, origin), bit = echoer.
class BitRows {
 public:
  BitRows() = default;
  BitRows(std::size_t rows, std::size_t bits)
      : words_per_row_((bits + 63) / 64), words_(rows * words_per_row_, 0) {}

  /// Sets bit `bit` of row `row`; returns true when it was previously clear.
  bool test_and_set(std::size_t row, std::size_t bit) noexcept {
    std::uint64_t& w = words_[row * words_per_row_ + (bit >> 6)];
    const std::uint64_t mask = 1ULL << (bit & 63);
    if ((w & mask) != 0) {
      return false;
    }
    w |= mask;
    return true;
  }

  [[nodiscard]] bool test(std::size_t row, std::size_t bit) const noexcept {
    return (words_[row * words_per_row_ + (bit >> 6)] &
            (1ULL << (bit & 63))) != 0;
  }

  /// Clears `count` consecutive rows starting at `first_row` — one
  /// contiguous word-parallel fill, the phase-window reclamation primitive.
  void clear_rows(std::size_t first_row, std::size_t count) noexcept {
    bitops::fill_words(
        std::span<std::uint64_t>(words_).subspan(first_row * words_per_row_,
                                                 count * words_per_row_),
        0);
  }

  /// Copies the first `rows` rows of `src` into this matrix. Both matrices
  /// must share `bits` (so words-per-row match) and both must have at least
  /// `rows` rows: the capacity-growth primitive for tables that carry their
  /// dedup state across a reallocation. A layout mismatch would silently
  /// scramble every row boundary, so the guard is always on (this is the
  /// cold growth path, never the per-message path).
  void copy_rows_from(const BitRows& src, std::size_t rows) {
    RCP_EXPECT(src.words_per_row_ == words_per_row_,
               "BitRows copy requires matching words-per-row");
    RCP_EXPECT(rows * words_per_row_ <= words_.size() &&
                   rows * words_per_row_ <= src.words_.size(),
               "BitRows copy row count within both matrices");
    bitops::copy_words(
        std::span<std::uint64_t>(words_).first(rows * words_per_row_),
        std::span<const std::uint64_t>(src.words_).first(rows *
                                                         words_per_row_));
  }

  /// Total set bits across the whole matrix (bulk observer, not hot path).
  [[nodiscard]] std::size_t popcount_all() const noexcept {
    return bitops::popcount_words(std::span<const std::uint64_t>(words_));
  }

  /// Total set bits across `count` consecutive rows from `first_row` — one
  /// contiguous word-parallel popcount (rows are row-major and contiguous).
  [[nodiscard]] std::size_t popcount_rows(std::size_t first_row,
                                          std::size_t count) const noexcept {
    return bitops::popcount_words(
        std::span<const std::uint64_t>(words_).subspan(
            first_row * words_per_row_, count * words_per_row_));
  }

  /// One row's bit words (enumeration via bitops::for_each_set_bit).
  [[nodiscard]] std::span<const std::uint64_t> row_words(
      std::size_t row) const noexcept {
    return std::span<const std::uint64_t>(words_).subspan(
        row * words_per_row_, words_per_row_);
  }

  [[nodiscard]] std::size_t words_per_row() const noexcept {
    return words_per_row_;
  }

  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return words_.size() * sizeof(std::uint64_t);
  }

 private:
  std::size_t words_per_row_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace rcp::core
