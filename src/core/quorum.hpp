// Flat, bit-level quorum accounting primitives for the Byzantine hot path.
//
// The malicious-case protocols count *distinct* processes: distinct echoers
// per (origin, phase) in Figure 2, distinct echo/ready senders per value in
// reliable broadcast. Process ids are dense in [0, n), so each such set is
// exactly an n-bit bitset — one cache line up to n = 512 — and membership,
// insertion and cardinality are single-word operations instead of red-black
// tree walks. These two containers are the whole vocabulary:
//
//  - ProcessSet: one n-capacity set of process ids with an incrementally
//    maintained cardinality (replaces std::set<ProcessId> quorums).
//  - BitRows: a rows x bits matrix in one flat allocation, row = one echoer
//    set (replaces std::set<(echoer, origin, phase)> dedup sets; the row
//    index encodes (phase-window slot, origin)).
//
// Both allocate exactly once, at construction; every subsequent operation
// is allocation-free, which is what lets the hot-alloc lint rule and the
// operator-new counting tests cover the whole echo path. Layout details:
// docs/PERF.md ("Quorum accounting").
#pragma once

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace rcp::core {

/// A fixed-capacity set of process ids backed by bit words, with O(1)
/// membership, insertion, and cardinality. Capacity is set once at
/// construction; ids must lie in [0, capacity).
class ProcessSet {
 public:
  ProcessSet() = default;
  explicit ProcessSet(std::uint32_t capacity)
      : words_((capacity + 63) / 64, 0) {}

  /// Inserts `id`; returns true when it was not already present.
  bool add(ProcessId id) noexcept {
    std::uint64_t& w = words_[id >> 6];
    const std::uint64_t bit = 1ULL << (id & 63);
    if ((w & bit) != 0) {
      return false;
    }
    w |= bit;
    ++size_;
    return true;
  }

  [[nodiscard]] bool contains(ProcessId id) const noexcept {
    return (words_[id >> 6] & (1ULL << (id & 63))) != 0;
  }

  /// Number of ids present (maintained incrementally, no popcount scan).
  [[nodiscard]] std::uint32_t size() const noexcept { return size_; }

  void clear() noexcept {
    std::fill(words_.begin(), words_.end(), 0);
    size_ = 0;
  }

 private:
  std::vector<std::uint64_t> words_;
  std::uint32_t size_ = 0;
};

/// A rows x bits bit matrix in a single flat allocation. Row r is an
/// independent bit set of `bits` capacity; rows are contiguous, so a span
/// of consecutive rows clears with one word fill. Used as the echo dedup
/// table: row = (phase-window slot, origin), bit = echoer id.
class BitRows {
 public:
  BitRows() = default;
  BitRows(std::size_t rows, std::size_t bits)
      : words_per_row_((bits + 63) / 64), words_(rows * words_per_row_, 0) {}

  /// Sets bit `bit` of row `row`; returns true when it was previously clear.
  bool test_and_set(std::size_t row, std::size_t bit) noexcept {
    std::uint64_t& w = words_[row * words_per_row_ + (bit >> 6)];
    const std::uint64_t mask = 1ULL << (bit & 63);
    if ((w & mask) != 0) {
      return false;
    }
    w |= mask;
    return true;
  }

  [[nodiscard]] bool test(std::size_t row, std::size_t bit) const noexcept {
    return (words_[row * words_per_row_ + (bit >> 6)] &
            (1ULL << (bit & 63))) != 0;
  }

  /// Clears `count` consecutive rows starting at `first_row` — one
  /// contiguous word fill, the phase-window reclamation primitive.
  void clear_rows(std::size_t first_row, std::size_t count) noexcept {
    const auto begin = words_.begin() +
                       static_cast<std::ptrdiff_t>(first_row * words_per_row_);
    std::fill(begin, begin + static_cast<std::ptrdiff_t>(count * words_per_row_),
              0);
  }

  /// Copies the first `rows` rows of `src` into this matrix. Both matrices
  /// must share `bits` (so words-per-row match) and this matrix must have at
  /// least `rows` rows: the capacity-growth primitive for tables that carry
  /// their dedup state across a reallocation.
  void copy_rows_from(const BitRows& src, std::size_t rows) noexcept {
    std::copy(src.words_.begin(),
              src.words_.begin() +
                  static_cast<std::ptrdiff_t>(rows * words_per_row_),
              words_.begin());
  }

  /// Total set bits across the whole matrix (test observer, not hot path).
  [[nodiscard]] std::size_t popcount_all() const noexcept {
    std::size_t total = 0;
    for (const std::uint64_t w : words_) {
      total += static_cast<std::size_t>(std::popcount(w));
    }
    return total;
  }

  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return words_.size() * sizeof(std::uint64_t);
  }

 private:
  std::size_t words_per_row_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace rcp::core
