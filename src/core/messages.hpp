// Typed wire messages for the paper's protocols.
//
// Each message has a one-byte tag followed by fixed-width fields. Decoders
// throw DecodeError on any malformed input (wrong tag, out-of-range value,
// truncated or oversized payload); protocol handlers catch DecodeError and
// drop the message, so Byzantine garbage can never crash a correct process.
#pragma once

#include <cstdint>

#include "common/bytes.hpp"
#include "common/types.hpp"

namespace rcp::core {

enum class MsgTag : std::uint8_t {
  fail_stop = 1,       ///< Fig 1: (phaseno, value, cardinality)
  initial = 2,         ///< Fig 2: (initial, from, value, phaseno)
  echo = 3,            ///< Fig 2: (echo, from, value, phaseno)
  majority = 4,        ///< Section 4.1 variant: (phaseno, value)
};

/// Reads the tag byte without consuming the payload. Throws DecodeError on
/// an empty payload or unknown tag.
[[nodiscard]] MsgTag peek_tag(const Bytes& payload);

/// Fig 1 message: a process's (phase, value, cardinality) state.
struct FailStopMsg {
  Phase phase = 0;
  Value value = Value::zero;
  std::uint32_t cardinality = 0;

  [[nodiscard]] Bytes encode() const;
  [[nodiscard]] static FailStopMsg decode(const Bytes& payload);
};

/// Fig 2 message: both `initial` and `echo` share one layout.
/// For an initial message, `from` is the originator (and must equal the
/// envelope sender — the model's authenticated identities); for an echo,
/// `from` is the process whose state is being echoed.
struct EchoProtocolMsg {
  bool is_echo = false;
  ProcessId from = 0;
  Value value = Value::zero;
  Phase phase = 0;

  [[nodiscard]] Bytes encode() const;
  [[nodiscard]] static EchoProtocolMsg decode(const Bytes& payload);
};

/// Section 4.1 majority-variant message: (phase, value).
struct MajorityMsg {
  Phase phase = 0;
  Value value = Value::zero;

  [[nodiscard]] Bytes encode() const;
  [[nodiscard]] static MajorityMsg decode(const Bytes& payload);
};

}  // namespace rcp::core
