#include "core/failstop.hpp"

#include "common/error.hpp"
#include "core/messages.hpp"

namespace rcp::core {

std::unique_ptr<FailStopConsensus> FailStopConsensus::make(
    ConsensusParams params, Value initial_value) {
  params.validate(FaultModel::fail_stop);
  return make_unchecked(params, initial_value);
}

std::unique_ptr<FailStopConsensus> FailStopConsensus::make_unchecked(
    ConsensusParams params, Value initial_value) {
  RCP_EXPECT(params.n >= 1 && params.k < params.n,
             "need at least one correct process");
  return std::unique_ptr<FailStopConsensus>(
      new FailStopConsensus(params, initial_value));
}

FailStopConsensus::FailStopConsensus(ConsensusParams params,
                                     Value initial_value) noexcept
    : params_(params), value_(initial_value) {}

void FailStopConsensus::on_start(sim::Context& ctx) {
  begin_phase(ctx);
}

void FailStopConsensus::begin_phase(sim::Context& ctx) {
  message_count_.reset();
  witness_count_.reset();
  ctx.broadcast(
      FailStopMsg{.phase = phaseno_, .value = value_, .cardinality = cardinality_}
          .encode());
}

void FailStopConsensus::on_message(sim::Context& ctx,
                                   const sim::Envelope& env) {
  if (halted_) {
    return;  // the paper's processes exit the protocol after deciding
  }
  FailStopMsg msg;
  try {
    msg = FailStopMsg::decode(env.payload);
  } catch (const DecodeError&) {
    return;  // not a message of this protocol; drop
  }
  if (msg.phase > phaseno_) {
    // Future-phase message: requeue via self-send, as in Figure 1.
    ctx.send(ctx.self(), env.payload);
    return;
  }
  if (msg.phase < phaseno_) {
    return;  // stale; no case in the pseudocode matches, so it is dropped
  }
  message_count_[msg.value] += 1;
  if (params_.is_witness_cardinality(msg.cardinality)) {
    witness_count_[msg.value] += 1;
  }
  if (message_count_.total() == params_.wait_quorum()) {
    end_phase(ctx);
  }
}

void FailStopConsensus::end_phase(sim::Context& ctx) {
  // The paper proves (consistency claim, Theorem 2) that no process can
  // hold witnesses for both values in the same phase; check it.
  RCP_INVARIANT(witness_count_[Value::zero] == 0 ||
                    witness_count_[Value::one] == 0,
                "witnesses for both values in one phase");

  if (witness_count_[Value::zero] > 0) {
    value_ = Value::zero;
  } else if (witness_count_[Value::one] > 0) {
    value_ = Value::one;
  } else {
    value_ = message_count_.majority();
  }
  cardinality_ = message_count_[value_];
  phaseno_ += 1;

  // Loop-condition check from the top of Figure 1's outer while.
  for (const Value i : kBothValues) {
    if (params_.witnesses_decide(witness_count_[i])) {
      decision_ = i;
      ctx.decide(i);
      // Final sends: enough information for everyone else to decide too.
      const std::uint32_t quorum = params_.wait_quorum();
      ctx.broadcast(
          FailStopMsg{.phase = phaseno_, .value = value_, .cardinality = quorum}
              .encode());
      ctx.broadcast(FailStopMsg{.phase = phaseno_ + 1,
                                .value = value_,
                                .cardinality = quorum}
                        .encode());
      halted_ = true;
      return;
    }
  }
  begin_phase(ctx);
}

}  // namespace rcp::core
