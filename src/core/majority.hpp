// The Section 4.1 majority variant, analysed by the paper's Markov chain.
//
// "In each phase processes send each other their value, and wait for n-k
// messages. Processes change their values to the majority of the received
// message values, and decide a value when receiving more than (n+k)/2
// messages with that value." It is floor((n-1)/3)-resilient in the
// fail-stop case (no echoes are needed because fail-stop processes cannot
// lie). Processes keep participating after deciding — the Markov analysis
// models all n processes broadcasting in every phase.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "common/process.hpp"
#include "common/types.hpp"
#include "core/params.hpp"

namespace rcp::core {

class MajorityConsensus final : public sim::Process {
 public:
  /// Validating factory: throws unless k <= floor((n-1)/3).
  [[nodiscard]] static std::unique_ptr<MajorityConsensus> make(
      ConsensusParams params, Value initial_value);

  /// For lower-bound experiments only: skips the resilience-bound check.
  [[nodiscard]] static std::unique_ptr<MajorityConsensus> make_unchecked(
      ConsensusParams params, Value initial_value);

  void on_start(sim::Context& ctx) override;
  void on_message(sim::Context& ctx, const sim::Envelope& env) override;
  [[nodiscard]] Phase phase() const noexcept override { return phaseno_; }

  [[nodiscard]] Value value() const noexcept { return value_; }
  [[nodiscard]] std::optional<Value> decision() const noexcept {
    return decision_;
  }

 private:
  MajorityConsensus(ConsensusParams params, Value initial_value) noexcept;

  void begin_phase(sim::Context& ctx);

  ConsensusParams params_;
  Value value_;
  Phase phaseno_ = 0;
  ValueCounts message_count_;
  std::optional<Value> decision_;
};

}  // namespace rcp::core
