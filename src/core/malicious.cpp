#include "core/malicious.hpp"

#include "common/error.hpp"
#include "core/messages.hpp"

namespace rcp::core {

std::unique_ptr<MaliciousConsensus> MaliciousConsensus::make(
    ConsensusParams params, Value initial_value) {
  params.validate(FaultModel::malicious);
  return make_unchecked(params, initial_value);
}

std::unique_ptr<MaliciousConsensus> MaliciousConsensus::make_unchecked(
    ConsensusParams params, Value initial_value) {
  RCP_EXPECT(params.n >= 1 && params.k < params.n,
             "need at least one correct process");
  return std::unique_ptr<MaliciousConsensus>(
      // rcp-lint: allow(hot-alloc) factory constructs the process once
      new MaliciousConsensus(params, initial_value));
}

MaliciousConsensus::MaliciousConsensus(ConsensusParams params,
                                       Value initial_value)
    : params_(params), value_(initial_value), engine_(params) {}

void MaliciousConsensus::on_start(sim::Context& ctx) {
  ctx.broadcast(EchoProtocolMsg{
      .is_echo = false, .from = ctx.self(), .value = value_, .phase = phaseno_}
                    .encode());
}

void MaliciousConsensus::on_message(sim::Context& ctx,
                                    const sim::Envelope& env) {
  EchoProtocolMsg msg;
  try {
    msg = EchoProtocolMsg::decode(env.payload);
  } catch (const DecodeError&) {
    return;  // Byzantine garbage; drop
  }
  EchoEngine::Outcome outcome = engine_.handle(env.sender, msg, phaseno_);
  if (outcome.echo_to_broadcast.has_value()) {
    ctx.broadcast(outcome.echo_to_broadcast->encode());
  }
  if (outcome.accepted.has_value()) {
    consume_accepts(ctx, std::span<const EchoEngine::Accept>(
                             &*outcome.accepted, 1));
  }
}

void MaliciousConsensus::consume_accepts(
    sim::Context& ctx, std::span<const EchoEngine::Accept> accepts) {
  std::size_t idx = 0;
  for (;;) {
    // Count acceptance events until the phase quorum of n-k is reached;
    // events beyond the quorum belong to an already-completed phase and are
    // dropped, exactly as the pseudocode's stale-echo case drops them.
    while (idx < accepts.size() &&
           message_count_.total() < params_.wait_quorum()) {
      message_count_[accepts[idx].value] += 1;
      ++idx;
    }
    if (message_count_.total() < params_.wait_quorum()) {
      return;  // phase still open; wait for more echoes
    }

    // End of phase: adopt the majority of accepted values, then decide if
    // one value was accepted from more than (n+k)/2 processes.
    value_ = message_count_.majority();
    for (const Value i : kBothValues) {
      if (params_.accepted_count_decides(message_count_[i]) &&
          !decision_.has_value()) {
        decision_ = i;
        ctx.decide(i);
      }
    }
    phaseno_ += 1;
    message_count_.reset();
    // Replayed deferred echoes may immediately produce acceptances for the
    // new phase — possibly enough to complete it, hence the outer loop.
    accepts = engine_.advance(phaseno_);
    idx = 0;
    ctx.broadcast(EchoProtocolMsg{.is_echo = false,
                                  .from = ctx.self(),
                                  .value = value_,
                                  .phase = phaseno_}
                      .encode());
  }
}

}  // namespace rcp::core
