#include "core/messages.hpp"

namespace rcp::core {

namespace {
[[nodiscard]] Value decode_value(std::uint8_t raw) {
  if (raw > 1) {
    throw DecodeError("value field out of range");
  }
  return value_from_int(raw);
}
}  // namespace

MsgTag peek_tag(const Bytes& payload) {
  if (payload.empty()) {
    throw DecodeError("empty payload");
  }
  const auto raw = static_cast<std::uint8_t>(payload.front());
  switch (raw) {
    case static_cast<std::uint8_t>(MsgTag::fail_stop):
    case static_cast<std::uint8_t>(MsgTag::initial):
    case static_cast<std::uint8_t>(MsgTag::echo):
    case static_cast<std::uint8_t>(MsgTag::majority):
      return static_cast<MsgTag>(raw);
    default:
      throw DecodeError("unknown message tag");
  }
}

Bytes FailStopMsg::encode() const {
  ByteWriter w(14);
  w.u8(static_cast<std::uint8_t>(MsgTag::fail_stop))
      .u64(phase)
      .u8(static_cast<std::uint8_t>(value))
      .u32(cardinality);
  return std::move(w).take();
}

FailStopMsg FailStopMsg::decode(const Bytes& payload) {
  ByteReader r(payload);
  if (r.u8() != static_cast<std::uint8_t>(MsgTag::fail_stop)) {
    throw DecodeError("not a fail-stop message");
  }
  FailStopMsg msg;
  msg.phase = r.u64();
  msg.value = decode_value(r.u8());
  msg.cardinality = r.u32();
  r.expect_done();
  return msg;
}

Bytes EchoProtocolMsg::encode() const {
  ByteWriter w(14);
  w.u8(static_cast<std::uint8_t>(is_echo ? MsgTag::echo : MsgTag::initial))
      .u32(from)
      .u8(static_cast<std::uint8_t>(value))
      .u64(phase);
  return std::move(w).take();
}

EchoProtocolMsg EchoProtocolMsg::decode(const Bytes& payload) {
  ByteReader r(payload);
  const std::uint8_t tag = r.u8();
  EchoProtocolMsg msg;
  if (tag == static_cast<std::uint8_t>(MsgTag::initial)) {
    msg.is_echo = false;
  } else if (tag == static_cast<std::uint8_t>(MsgTag::echo)) {
    msg.is_echo = true;
  } else {
    throw DecodeError("not an initial/echo message");
  }
  msg.from = r.u32();
  msg.value = decode_value(r.u8());
  msg.phase = r.u64();
  r.expect_done();
  return msg;
}

Bytes MajorityMsg::encode() const {
  ByteWriter w(10);
  w.u8(static_cast<std::uint8_t>(MsgTag::majority))
      .u64(phase)
      .u8(static_cast<std::uint8_t>(value));
  return std::move(w).take();
}

MajorityMsg MajorityMsg::decode(const Bytes& payload) {
  ByteReader r(payload);
  if (r.u8() != static_cast<std::uint8_t>(MsgTag::majority)) {
    throw DecodeError("not a majority-variant message");
  }
  MajorityMsg msg;
  msg.phase = r.u64();
  msg.value = decode_value(r.u8());
  r.expect_done();
  return msg;
}

}  // namespace rcp::core
