#include "core/echo_engine.hpp"

#include <algorithm>

namespace rcp::core {

EchoEngine::Outcome EchoEngine::handle(ProcessId sender,
                                       const EchoProtocolMsg& msg,
                                       Phase current_phase) {
  Outcome out;
  if (!msg.is_echo) {
    // Initial message: the model's authenticated identities let us reject
    // forgeries outright. Without this check one malicious process could
    // equivocate *on behalf of a correct one*, voiding the paper's
    // consistency claim.
    if (msg.from != sender) {
      return out;
    }
    if (!seen_initial_.emplace(msg.from, msg.phase).second) {
      return out;  // duplicate initial; only the first is echoed
    }
    out.echo_to_broadcast = EchoProtocolMsg{
        .is_echo = true, .from = msg.from, .value = msg.value, .phase = msg.phase};
    return out;
  }

  // Stale echoes are dropped without touching the dedup set: recording
  // them would let a Byzantine process grow our memory without bound by
  // replaying old-phase traffic.
  if (msg.phase < current_phase) {
    return out;
  }
  // At most one echo per (echoer, origin, phase) is processed, regardless
  // of value — so a correct receiver never counts two echoes from the same
  // echoer about the same origin and phase.
  if (!seen_echo_.emplace(sender, msg.from, msg.phase).second) {
    return out;
  }
  if (msg.phase > current_phase) {
    deferred_.push_back(
        DeferredEcho{.origin = msg.from, .value = msg.value, .phase = msg.phase});
    return out;
  }
  out.accepted = tally(msg.from, msg.value);
  return out;
}

std::optional<EchoEngine::Accept> EchoEngine::tally(ProcessId origin,
                                                    Value value) {
  const auto key = std::make_pair(origin, static_cast<std::uint8_t>(value));
  const std::uint32_t count = ++counts_[key];
  if (count == params_.echo_acceptance_threshold()) {
    return Accept{.origin = origin, .value = value};
  }
  return std::nullopt;
}

std::vector<EchoEngine::Accept> EchoEngine::advance(Phase new_phase) {
  counts_.clear();
  // Reclaim dedup entries for phases that are now in the past: their
  // echoes would be dropped as stale before the dedup check anyway.
  std::erase_if(seen_echo_, [new_phase](const auto& key) {
    return std::get<2>(key) < new_phase;
  });
  std::vector<Accept> accepts;
  std::vector<DeferredEcho> keep;
  keep.reserve(deferred_.size());
  for (const DeferredEcho& d : deferred_) {
    if (d.phase == new_phase) {
      if (auto a = tally(d.origin, d.value)) {
        accepts.push_back(*a);
      }
    } else if (d.phase > new_phase) {
      keep.push_back(d);
    }
    // d.phase < new_phase: stale by now; dropped.
  }
  deferred_ = std::move(keep);
  return accepts;
}

std::uint32_t EchoEngine::echo_count(ProcessId origin,
                                     Value value) const noexcept {
  const auto it =
      counts_.find(std::make_pair(origin, static_cast<std::uint8_t>(value)));
  return it == counts_.end() ? 0 : it->second;
}

}  // namespace rcp::core
