// Cold paths and phase-advance bookkeeping of EchoEngine; the per-message
// fast path is inline in echo_engine.hpp. Everything here is off the
// per-echo critical path: construction, initial-message ledgers, the
// overflow ledger for beyond-window phases, and advance()'s bulk
// reclamation (which runs on the word-parallel kernels).

#include "core/echo_engine.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace rcp::core {

EchoEngine::EchoEngine(ConsensusParams params)
    : params_(params),
      echo_window_(static_cast<std::size_t>(kPhaseWindow) * params.n,
                   params.n),
      tally_stride_(bitops::padded_to_cache_line<std::uint32_t>(params.n)) {
  // rcp-lint: allow(hot-alloc) one-time table setup at construction
  initial_next_.assign(params.n, 0);
  // rcp-lint: allow(hot-alloc) one-time table setup at construction
  tally_lanes_.assign(2 * tally_stride_, 0);
}

void EchoEngine::handle_initial(Outcome& out, ProcessId sender,
                                const EchoProtocolMsg& msg) {
  // Initial message: the model's authenticated identities let us reject
  // forgeries outright. Without this check one malicious process could
  // equivocate *on behalf of a correct one*, voiding the paper's
  // consistency claim.
  if (msg.from != sender) {
    return;
  }
  if (!initial_is_fresh(msg.from, msg.phase)) {
    return;  // duplicate initial; only the first is echoed
  }
  out.echo_to_broadcast = EchoProtocolMsg{
      .is_echo = true, .from = msg.from, .value = msg.value, .phase = msg.phase};
}

void EchoEngine::defer_echo(const EchoProtocolMsg& msg) {
  // rcp-lint: allow(hot-alloc) deferred ring growth until steady state
  deferred_.push_back(
      DeferredEcho{.origin = msg.from, .value = msg.value, .phase = msg.phase});
}

void EchoEngine::handle_echo_outside_window(Outcome& out, ProcessId sender,
                                            const EchoProtocolMsg& msg,
                                            Phase current_phase) {
  // Exact set semantics for the dedup triple when its phase cannot be
  // indexed by the flat window: scan-and-insert in the overflow ledger.
  for (const OverflowEntry& entry : echo_overflow_) {
    if (entry.echoer == sender && entry.origin == msg.from &&
        entry.phase == msg.phase) {
      return;
    }
  }
  // rcp-lint: allow(hot-alloc) overflow ledger holds beyond-window phases
  echo_overflow_.push_back(
      OverflowEntry{.echoer = sender, .origin = msg.from, .phase = msg.phase});
  if (msg.phase > current_phase) {
    defer_echo(msg);
    return;
  }
  out.accepted = tally(msg.from, msg.value);
}

bool EchoEngine::initial_is_fresh(ProcessId origin, Phase phase) {
  Phase& next = initial_next_[origin];
  if (phase < next) {
    return false;  // below the watermark: certainly seen
  }
  if (phase == next) {
    // The common case — a correct origin's phases arrive contiguously.
    // Absorb any sparse entries the new watermark now makes contiguous.
    ++next;
    for (bool absorbed = true; absorbed;) {
      absorbed = false;
      for (std::size_t i = 0; i < initial_sparse_.size(); ++i) {
        if (initial_sparse_[i].first == origin &&
            initial_sparse_[i].second == next) {
          initial_sparse_[i] = initial_sparse_.back();
          initial_sparse_.pop_back();
          ++next;
          absorbed = true;
          break;
        }
      }
    }
    return true;
  }
  // Above the watermark: only a Byzantine origin skips phases. Exact set
  // semantics via the sparse ledger.
  for (const auto& entry : initial_sparse_) {
    if (entry.first == origin && entry.second == phase) {
      return false;
    }
  }
  // rcp-lint: allow(hot-alloc) sparse ledger holds Byzantine-skipped phases
  initial_sparse_.emplace_back(origin, phase);
  return true;
}

std::span<const EchoEngine::Accept> EchoEngine::advance(Phase new_phase) {
  RCP_EXPECT(new_phase >= window_base_,
             "EchoEngine phases advance monotonically");
  // Reset both SoA tally lanes with one flat fill (uint32 lanes are
  // contiguous in a single aligned buffer).
  std::fill(tally_lanes_.begin(), tally_lanes_.end(), 0);

  // Reclaim dedup rows for phases that are now in the past: their echoes
  // would be dropped as stale before the dedup check anyway. Each phase's
  // rows are contiguous (slot-major layout), one word-parallel fill per
  // phase; the slot's live-bit counter resets with it.
  const Phase last_reclaimed =
      std::min(new_phase, window_base_ + kPhaseWindow);
  for (Phase t = window_base_; t < last_reclaimed; ++t) {
    echo_window_.clear_rows(window_row(t, 0), params_.n);
    slot_live_bits_[t & (kPhaseWindow - 1)] = 0;
  }
  window_base_ = new_phase;

  // Overflow entries whose phases slid into the window migrate to bitset
  // rows; stale ones drop; the remainder compacts in place. Migrated
  // entries land in rows reclaimed above (the overflow ledger is exact, so
  // every migration sets a fresh bit), and the slot counters follow.
  std::size_t kept_overflow = 0;
  for (std::size_t i = 0; i < echo_overflow_.size(); ++i) {
    const OverflowEntry entry = echo_overflow_[i];
    if (entry.phase < new_phase) {
      continue;  // stale
    }
    if (entry.phase - new_phase < kPhaseWindow) {
      if (echo_window_.test_and_set(window_row(entry.phase, entry.origin),
                                    entry.echoer)) {
        ++slot_live_bits_[entry.phase & (kPhaseWindow - 1)];
      }
      continue;
    }
    echo_overflow_[kept_overflow++] = entry;
  }
  // rcp-lint: allow(hot-alloc) shrinking resize, recycles in place
  echo_overflow_.resize(kept_overflow);

  // Replay deferred echoes for the new phase in arrival order; keep later
  // phases by stable in-place compaction (the recycling-ring idiom — the
  // ring's capacity is the steady state, no per-advance allocation).
  replayed_.clear();
  std::size_t kept_deferred = 0;
  for (std::size_t i = 0; i < deferred_.size(); ++i) {
    const DeferredEcho d = deferred_[i];
    if (d.phase == new_phase) {
      if (auto a = tally(d.origin, d.value)) {
        // rcp-lint: allow(hot-alloc) replay buffer growth until steady state
        replayed_.push_back(*a);
      }
    } else if (d.phase > new_phase) {
      deferred_[kept_deferred++] = d;
    }
    // d.phase < new_phase: stale by now; dropped.
  }
  // rcp-lint: allow(hot-alloc) shrinking resize, recycles in place
  deferred_.resize(kept_deferred);
  return replayed_;
}

std::uint32_t EchoEngine::echo_count(ProcessId origin,
                                     Value value) const noexcept {
  return origin < params_.n ? tally_lanes_[lane_index(origin, value)] : 0;
}

std::size_t EchoEngine::memory_bytes() const noexcept {
  return echo_window_.memory_bytes() +
         initial_next_.capacity() * sizeof(Phase) +
         initial_sparse_.capacity() * sizeof(initial_sparse_[0]) +
         echo_overflow_.capacity() * sizeof(OverflowEntry) +
         tally_lanes_.capacity() * sizeof(std::uint32_t) +
         deferred_.capacity() * sizeof(DeferredEcho) +
         replayed_.capacity() * sizeof(Accept);
}

}  // namespace rcp::core
