#include "core/echo_engine.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace rcp::core {

EchoEngine::EchoEngine(ConsensusParams params)
    : params_(params),
      echo_window_(static_cast<std::size_t>(kPhaseWindow) * params.n,
                   params.n) {
  // rcp-lint: allow(hot-alloc) one-time table setup at construction
  initial_next_.assign(params.n, 0);
  // rcp-lint: allow(hot-alloc) one-time table setup at construction
  counts_.assign(params.n, ValueCounts{});
}

EchoEngine::Outcome EchoEngine::handle(ProcessId sender,
                                       const EchoProtocolMsg& msg,
                                       Phase current_phase) {
  Outcome out;
  // The wire format does not bound `from`; a fabricated origin >= n can
  // never be accepted (correct processes never echo it, and the k possible
  // Byzantine echoes are below any quorum), so drop it before it can touch
  // an origin-indexed table.
  if (msg.from >= params_.n) {
    return out;
  }
  if (!msg.is_echo) {
    // Initial message: the model's authenticated identities let us reject
    // forgeries outright. Without this check one malicious process could
    // equivocate *on behalf of a correct one*, voiding the paper's
    // consistency claim.
    if (msg.from != sender) {
      return out;
    }
    if (!initial_is_fresh(msg.from, msg.phase)) {
      return out;  // duplicate initial; only the first is echoed
    }
    out.echo_to_broadcast = EchoProtocolMsg{
        .is_echo = true, .from = msg.from, .value = msg.value, .phase = msg.phase};
    return out;
  }

  // Stale echoes are dropped without touching the dedup table: recording
  // them would let a Byzantine process grow our memory without bound by
  // replaying old-phase traffic.
  if (msg.phase < current_phase) {
    return out;
  }
  // At most one echo per (echoer, origin, phase) is processed, regardless
  // of value — so a correct receiver never counts two echoes from the same
  // echoer about the same origin and phase.
  if (!record_echo(sender, msg.from, msg.phase)) {
    return out;
  }
  if (msg.phase > current_phase) {
    // rcp-lint: allow(hot-alloc) deferred ring growth until steady state
    deferred_.push_back(
        DeferredEcho{.origin = msg.from, .value = msg.value, .phase = msg.phase});
    return out;
  }
  out.accepted = tally(msg.from, msg.value);
  return out;
}

bool EchoEngine::initial_is_fresh(ProcessId origin, Phase phase) {
  Phase& next = initial_next_[origin];
  if (phase < next) {
    return false;  // below the watermark: certainly seen
  }
  if (phase == next) {
    // The common case — a correct origin's phases arrive contiguously.
    // Absorb any sparse entries the new watermark now makes contiguous.
    ++next;
    for (bool absorbed = true; absorbed;) {
      absorbed = false;
      for (std::size_t i = 0; i < initial_sparse_.size(); ++i) {
        if (initial_sparse_[i].first == origin &&
            initial_sparse_[i].second == next) {
          initial_sparse_[i] = initial_sparse_.back();
          initial_sparse_.pop_back();
          ++next;
          absorbed = true;
          break;
        }
      }
    }
    return true;
  }
  // Above the watermark: only a Byzantine origin skips phases. Exact set
  // semantics via the sparse ledger.
  for (const auto& entry : initial_sparse_) {
    if (entry.first == origin && entry.second == phase) {
      return false;
    }
  }
  // rcp-lint: allow(hot-alloc) sparse ledger holds Byzantine-skipped phases
  initial_sparse_.emplace_back(origin, phase);
  return true;
}

bool EchoEngine::record_echo(ProcessId echoer, ProcessId origin, Phase phase) {
  if (echoer >= params_.n) {
    // Mirror image of the origin bound in handle(): n is the whole id
    // space, so an out-of-range echoer cannot occur through any transport;
    // dropping is outcome-identical and keeps the bit index in range.
    return false;
  }
  if (phase >= window_base_ && phase - window_base_ < kPhaseWindow) {
    return echo_window_.test_and_set(window_row(phase, origin), echoer);
  }
  for (const OverflowEntry& entry : echo_overflow_) {
    if (entry.echoer == echoer && entry.origin == origin &&
        entry.phase == phase) {
      return false;
    }
  }
  // rcp-lint: allow(hot-alloc) overflow ledger holds beyond-window phases
  echo_overflow_.push_back(
      OverflowEntry{.echoer = echoer, .origin = origin, .phase = phase});
  return true;
}

std::optional<EchoEngine::Accept> EchoEngine::tally(ProcessId origin,
                                                    Value value) {
  const std::uint32_t count = ++counts_[origin][value];
  if (count == params_.echo_acceptance_threshold()) {
    return Accept{.origin = origin, .value = value};
  }
  return std::nullopt;
}

std::span<const EchoEngine::Accept> EchoEngine::advance(Phase new_phase) {
  RCP_EXPECT(new_phase >= window_base_,
             "EchoEngine phases advance monotonically");
  std::fill(counts_.begin(), counts_.end(), ValueCounts{});

  // Reclaim dedup rows for phases that are now in the past: their echoes
  // would be dropped as stale before the dedup check anyway. Each phase's
  // rows are contiguous (slot-major layout), one word-fill per phase.
  const Phase last_reclaimed =
      std::min(new_phase, window_base_ + kPhaseWindow);
  for (Phase t = window_base_; t < last_reclaimed; ++t) {
    echo_window_.clear_rows(window_row(t, 0), params_.n);
  }
  window_base_ = new_phase;

  // Overflow entries whose phases slid into the window migrate to bitset
  // rows; stale ones drop; the remainder compacts in place.
  std::size_t kept_overflow = 0;
  for (std::size_t i = 0; i < echo_overflow_.size(); ++i) {
    const OverflowEntry entry = echo_overflow_[i];
    if (entry.phase < new_phase) {
      continue;  // stale
    }
    if (entry.phase - new_phase < kPhaseWindow) {
      (void)echo_window_.test_and_set(window_row(entry.phase, entry.origin),
                                      entry.echoer);
      continue;
    }
    echo_overflow_[kept_overflow++] = entry;
  }
  // rcp-lint: allow(hot-alloc) shrinking resize, recycles in place
  echo_overflow_.resize(kept_overflow);

  // Replay deferred echoes for the new phase in arrival order; keep later
  // phases by stable in-place compaction (the recycling-ring idiom — the
  // ring's capacity is the steady state, no per-advance allocation).
  replayed_.clear();
  std::size_t kept_deferred = 0;
  for (std::size_t i = 0; i < deferred_.size(); ++i) {
    const DeferredEcho d = deferred_[i];
    if (d.phase == new_phase) {
      if (auto a = tally(d.origin, d.value)) {
        // rcp-lint: allow(hot-alloc) replay buffer growth until steady state
        replayed_.push_back(*a);
      }
    } else if (d.phase > new_phase) {
      deferred_[kept_deferred++] = d;
    }
    // d.phase < new_phase: stale by now; dropped.
  }
  // rcp-lint: allow(hot-alloc) shrinking resize, recycles in place
  deferred_.resize(kept_deferred);
  return replayed_;
}

std::uint32_t EchoEngine::echo_count(ProcessId origin,
                                     Value value) const noexcept {
  return origin < params_.n ? counts_[origin][value] : 0;
}

std::size_t EchoEngine::memory_bytes() const noexcept {
  return echo_window_.memory_bytes() +
         initial_next_.capacity() * sizeof(Phase) +
         initial_sparse_.capacity() * sizeof(initial_sparse_[0]) +
         echo_overflow_.capacity() * sizeof(OverflowEntry) +
         counts_.capacity() * sizeof(ValueCounts) +
         deferred_.capacity() * sizeof(DeferredEcho) +
         replayed_.capacity() * sizeof(Accept);
}

}  // namespace rcp::core
