#include "core/majority.hpp"

#include "common/error.hpp"
#include "core/messages.hpp"

namespace rcp::core {

std::unique_ptr<MajorityConsensus> MajorityConsensus::make(
    ConsensusParams params, Value initial_value) {
  // Section 4.1 describes the variant as floor((n-1)/3)-resilient, i.e. the
  // same bound as the malicious protocol it is derived from.
  params.validate(FaultModel::malicious);
  return make_unchecked(params, initial_value);
}

std::unique_ptr<MajorityConsensus> MajorityConsensus::make_unchecked(
    ConsensusParams params, Value initial_value) {
  RCP_EXPECT(params.n >= 1 && params.k < params.n,
             "need at least one correct process");
  return std::unique_ptr<MajorityConsensus>(
      new MajorityConsensus(params, initial_value));
}

MajorityConsensus::MajorityConsensus(ConsensusParams params,
                                     Value initial_value) noexcept
    : params_(params), value_(initial_value) {}

void MajorityConsensus::on_start(sim::Context& ctx) {
  begin_phase(ctx);
}

void MajorityConsensus::begin_phase(sim::Context& ctx) {
  message_count_.reset();
  ctx.broadcast(MajorityMsg{.phase = phaseno_, .value = value_}.encode());
}

void MajorityConsensus::on_message(sim::Context& ctx,
                                   const sim::Envelope& env) {
  MajorityMsg msg;
  try {
    msg = MajorityMsg::decode(env.payload);
  } catch (const DecodeError&) {
    return;
  }
  if (msg.phase > phaseno_) {
    ctx.send(ctx.self(), env.payload);  // requeue for a future phase
    return;
  }
  if (msg.phase < phaseno_) {
    return;  // stale
  }
  message_count_[msg.value] += 1;
  if (message_count_.total() < params_.wait_quorum()) {
    return;
  }
  // End of phase.
  value_ = message_count_.majority();
  for (const Value i : kBothValues) {
    if (params_.accepted_count_decides(message_count_[i]) &&
        !decision_.has_value()) {
      decision_ = i;
      ctx.decide(i);
    }
  }
  phaseno_ += 1;
  begin_phase(ctx);
}

}  // namespace rcp::core
