// Word-parallel bit-span kernels: the data-parallel substrate under the
// quorum primitives (ProcessSet, BitRows) and the echo tally tables.
//
// The malicious-case hot path is, at scale, pure bit-set arithmetic —
// dedup bitmaps of distinct echoers, bulk popcounts for live-entry
// accounting, contiguous word fills for phase-window reclamation. This
// header is the one place that arithmetic lives. Every kernel has:
//
//  - a portable uint64 word-parallel reference form (`scalar::`), always
//    compiled, always the semantic ground truth, and
//  - an optional AVX2 form confined to *one* translation unit
//    (bitops_avx2.cpp — the only file permitted to include <immintrin.h>,
//    enforced by rcp-lint's os-exclusive rule), selected at process start
//    by runtime CPUID dispatch through a function-pointer table.
//
// Both forms compute bit-identical results, so protocol behaviour —
// pinned by the trace-digest goldens — is invariant under
// RCP_ENABLE_AVX2=ON/OFF and under the CPU the binary lands on. Spans at
// or below kInlineWords bypass the dispatch table entirely: at small n
// the indirect call would cost more than the loop, and the inline scalar
// form lets the compiler fold the whole kernel into the caller.
//
// Also here: the cache-line-aligned allocator used by the struct-of-arrays
// tally lanes (docs/PERF.md "Word-parallel kernels").
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <new>
#include <span>
#include <vector>

namespace rcp::core::bitops {

/// x86 cache-line size; SoA counter lanes are padded to multiples of this
/// so each lane starts on its own line and vector loops never split lines.
inline constexpr std::size_t kCacheLineBytes = 64;

/// Spans of at most this many words (512 bits) skip the dispatch table and
/// run the inline scalar kernel: below this size the indirect call is the
/// dominant cost and AVX2 cannot win.
inline constexpr std::size_t kInlineWords = 8;

/// Which kernel backend the dispatch table resolved to at process start.
enum class Backend : std::uint8_t { scalar = 0, avx2 = 1 };

[[nodiscard]] Backend active_backend() noexcept;
[[nodiscard]] const char* backend_name(Backend backend) noexcept;

// ---------------------------------------------------------------------------
// Portable reference kernels. Always available, always correct; the AVX2
// backend is validated against these (tests/core/bitops_test.cpp).

namespace scalar {

[[nodiscard]] inline std::size_t popcount_words(const std::uint64_t* words,
                                                std::size_t count) noexcept {
  std::size_t total = 0;
  for (std::size_t i = 0; i < count; ++i) {
    total += static_cast<std::size_t>(std::popcount(words[i]));
  }
  return total;
}

inline void fill_words(std::uint64_t* words, std::size_t count,
                       std::uint64_t value) noexcept {
  for (std::size_t i = 0; i < count; ++i) {
    words[i] = value;
  }
}

inline void copy_words(std::uint64_t* dst, const std::uint64_t* src,
                       std::size_t count) noexcept {
  for (std::size_t i = 0; i < count; ++i) {
    dst[i] = src[i];
  }
}

/// dst |= src, word-wise: the set-union / masked-accumulate primitive.
inline void or_words(std::uint64_t* dst, const std::uint64_t* src,
                     std::size_t count) noexcept {
  for (std::size_t i = 0; i < count; ++i) {
    dst[i] |= src[i];
  }
}

}  // namespace scalar

// ---------------------------------------------------------------------------
// Runtime dispatch. The table starts as all-scalar (a constant-initialized
// default, so kernels invoked before dynamic initialization still run
// correctly) and is upgraded to AVX2 during static init when the backend is
// compiled in and CPUID reports support.

namespace detail {

struct KernelTable {
  std::size_t (*popcount)(const std::uint64_t*, std::size_t) noexcept =
      &scalar::popcount_words;
  void (*fill)(std::uint64_t*, std::size_t, std::uint64_t) noexcept =
      &scalar::fill_words;
  void (*copy)(std::uint64_t*, const std::uint64_t*, std::size_t) noexcept =
      &scalar::copy_words;
  void (*bit_or)(std::uint64_t*, const std::uint64_t*, std::size_t) noexcept =
      &scalar::or_words;
};

extern const KernelTable& kernels() noexcept;

}  // namespace detail

// ---------------------------------------------------------------------------
// Dispatched span entry points — what ProcessSet / BitRows / the engines
// call. Small spans take the inline scalar path (see kInlineWords).

/// Total set bits across `words`.
[[nodiscard]] inline std::size_t popcount_words(
    std::span<const std::uint64_t> words) noexcept {
  if (words.size() <= kInlineWords) {
    return scalar::popcount_words(words.data(), words.size());
  }
  return detail::kernels().popcount(words.data(), words.size());
}

/// Sets every word of `words` to `value` (0 == bulk clear).
inline void fill_words(std::span<std::uint64_t> words,
                       std::uint64_t value) noexcept {
  if (words.size() <= kInlineWords) {
    scalar::fill_words(words.data(), words.size(), value);
    return;
  }
  detail::kernels().fill(words.data(), words.size(), value);
}

/// Copies `src` into `dst` (sizes must match; non-overlapping).
inline void copy_words(std::span<std::uint64_t> dst,
                       std::span<const std::uint64_t> src) noexcept {
  if (src.size() <= kInlineWords) {
    scalar::copy_words(dst.data(), src.data(), src.size());
    return;
  }
  detail::kernels().copy(dst.data(), src.data(), src.size());
}

/// dst |= src, word-wise (sizes must match; non-overlapping).
inline void or_words(std::span<std::uint64_t> dst,
                     std::span<const std::uint64_t> src) noexcept {
  if (src.size() <= kInlineWords) {
    scalar::or_words(dst.data(), src.data(), src.size());
    return;
  }
  detail::kernels().bit_or(dst.data(), src.data(), src.size());
}

/// Calls `fn(bit_index)` for every set bit of `words`, ascending. The
/// classic isolate-lowest-bit loop: cost scales with the popcount, not the
/// span, which is what makes sparse-set enumeration cheap at large n.
template <typename Fn>
inline void for_each_set_bit(std::span<const std::uint64_t> words, Fn&& fn) {
  for (std::size_t i = 0; i < words.size(); ++i) {
    std::uint64_t w = words[i];
    while (w != 0) {
      const auto bit = static_cast<std::size_t>(std::countr_zero(w));
      fn(i * 64 + bit);
      w &= w - 1;  // clear lowest set bit
    }
  }
}

// ---------------------------------------------------------------------------
// Cache-line-aligned storage for the SoA tally lanes.

/// Minimal allocator handing out kCacheLineBytes-aligned storage, so each
/// SoA counter lane begins on its own cache line.
template <typename T>
class AlignedAllocator {
 public:
  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U>&) noexcept {}  // NOLINT

  [[nodiscard]] T* allocate(std::size_t count) {
    // rcp-lint: allow(hot-alloc) one-time aligned lane allocation at setup
    return static_cast<T*>(::operator new(count * sizeof(T),
                                          std::align_val_t{kCacheLineBytes}));
  }

  void deallocate(T* ptr, std::size_t) noexcept {
    ::operator delete(ptr, std::align_val_t{kCacheLineBytes});
  }

  template <typename U>
  [[nodiscard]] bool operator==(const AlignedAllocator<U>&) const noexcept {
    return true;
  }
};

/// A vector whose buffer starts on a cache-line boundary.
template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

/// Rounds `count` elements of width `sizeof(T)` up to a whole number of
/// cache lines, so consecutive lanes never share a line.
template <typename T>
[[nodiscard]] constexpr std::size_t padded_to_cache_line(
    std::size_t count) noexcept {
  constexpr std::size_t per_line = kCacheLineBytes / sizeof(T);
  return (count + per_line - 1) / per_line * per_line;
}

}  // namespace rcp::core::bitops
