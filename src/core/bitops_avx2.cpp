// AVX2 backend for the bit-span kernels — the one translation unit in the
// repo built with -mavx2 and the one place <immintrin.h> may appear
// (rcp-lint os-exclusive rule; see tools/lint_rules.toml). Everything here
// is bit-identical to the scalar reference kernels in core/bitops.hpp:
// same sums, same stores, different width. Selection happens at process
// start via CPUID (bitops.cpp); this file intentionally has no header —
// bitops.cpp forward-declares these four entry points.
//
// The popcount uses the Mula nibble-LUT method: per-byte popcounts via two
// PSHUFB table lookups, horizontally summed into 64-bit lanes with PSADBW.
// On AVX2 hardware without VPOPCNTQ this is the standard fastest form.

#include <cstddef>
#include <cstdint>

#include <immintrin.h>

namespace rcp::core::bitops::detail {

bool avx2_runtime_supported() noexcept {
  return __builtin_cpu_supports("avx2") != 0;
}

std::size_t popcount_words_avx2(const std::uint64_t* words,
                                std::size_t count) noexcept {
  const __m256i nibble_counts = _mm256_setr_epi8(
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,  //
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_nibble = _mm256_set1_epi8(0x0f);
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(words + i));
    const __m256i lo = _mm256_and_si256(v, low_nibble);
    const __m256i hi = _mm256_and_si256(_mm256_srli_epi64(v, 4), low_nibble);
    const __m256i per_byte =
        _mm256_add_epi8(_mm256_shuffle_epi8(nibble_counts, lo),
                        _mm256_shuffle_epi8(nibble_counts, hi));
    acc = _mm256_add_epi64(acc,
                           _mm256_sad_epu8(per_byte, _mm256_setzero_si256()));
  }
  alignas(32) std::uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  std::size_t total =
      static_cast<std::size_t>(lanes[0] + lanes[1] + lanes[2] + lanes[3]);
  for (; i < count; ++i) {
    total += static_cast<std::size_t>(__builtin_popcountll(words[i]));
  }
  return total;
}

void fill_words_avx2(std::uint64_t* words, std::size_t count,
                     std::uint64_t value) noexcept {
  const __m256i v = _mm256_set1_epi64x(static_cast<long long>(value));
  std::size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(words + i), v);
  }
  for (; i < count; ++i) {
    words[i] = value;
  }
}

void copy_words_avx2(std::uint64_t* dst, const std::uint64_t* src,
                     std::size_t count) noexcept {
  std::size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), v);
  }
  for (; i < count; ++i) {
    dst[i] = src[i];
  }
}

void or_words_avx2(std::uint64_t* dst, const std::uint64_t* src,
                   std::size_t count) noexcept {
  std::size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_or_si256(a, b));
  }
  for (; i < count; ++i) {
    dst[i] |= src[i];
  }
}

}  // namespace rcp::core::bitops::detail
