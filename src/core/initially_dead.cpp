#include "core/initially_dead.hpp"

#include <algorithm>

#include "common/bytes.hpp"
#include "common/error.hpp"

namespace rcp::core {

namespace {
constexpr std::uint8_t kInputTag = 30;
constexpr std::uint8_t kHeardTag = 31;
}  // namespace

std::vector<std::vector<bool>> transitive_closure(
    std::vector<std::vector<bool>> adj) {
  const std::size_t n = adj.size();
  for (std::size_t i = 0; i < n; ++i) {
    RCP_EXPECT(adj[i].size() == n, "adjacency matrix must be square");
    adj[i][i] = true;  // reflexive closure
  }
  for (std::size_t via = 0; via < n; ++via) {
    for (std::size_t i = 0; i < n; ++i) {
      if (!adj[i][via]) {
        continue;
      }
      for (std::size_t j = 0; j < n; ++j) {
        if (adj[via][j]) {
          adj[i][j] = true;
        }
      }
    }
  }
  return adj;
}

bool closure_strongly_connected(
    const std::vector<std::vector<bool>>& closure) {
  for (const auto& row : closure) {
    for (const bool reachable : row) {
      if (!reachable) {
        return false;
      }
    }
  }
  return true;
}

InitiallyDeadConsensus::InitiallyDeadConsensus(std::uint32_t n, ProcessId self,
                                               Value input)
    : n_(n), self_(self), input_(input) {
  RCP_EXPECT(n >= 1 && self < n, "invalid process id");
}

Value InitiallyDeadConsensus::bivalent_function(
    const std::vector<Value>& inputs) {
  std::size_t ones = 0;
  for (const Value v : inputs) {
    if (v == Value::one) {
      ++ones;
    }
  }
  // rcp-lint: allow(threshold) majority of the received multiset, not an (n,k) quorum
  return 2 * ones >= inputs.size() ? Value::one : Value::zero;
}

Bytes InitiallyDeadConsensus::broadcast_for_round(std::uint32_t round) {
  if (round == 0) {
    ByteWriter w(2);
    w.u8(kInputTag).u8(static_cast<std::uint8_t>(input_));
    return std::move(w).take();
  }
  RCP_EXPECT(round == 1, "protocol has exactly two rounds");
  ByteWriter w(5 + heard_.size() * 5);
  w.u8(kHeardTag).u32(static_cast<std::uint32_t>(heard_.size()));
  for (const auto& [id, value] : heard_) {
    w.u32(id).u8(static_cast<std::uint8_t>(value));
  }
  return std::move(w).take();
}

void InitiallyDeadConsensus::receive_round(
    std::uint32_t round,
    const std::vector<std::pair<ProcessId, Bytes>>& messages) {
  if (round == 0) {
    for (const auto& [sender, payload] : messages) {
      ByteReader r(payload);
      if (r.u8() != kInputTag) {
        throw DecodeError("expected round-0 input message");
      }
      const Value v = value_from_int(r.u8());
      r.expect_done();
      heard_.emplace_back(sender, v);
    }
    return;
  }
  RCP_EXPECT(round == 1, "protocol has exactly two rounds");

  // Build G: edge q -> p whenever p reported hearing q in round 0.
  std::vector<std::vector<bool>> adj(n_, std::vector<bool>(n_, false));
  std::vector<std::optional<Value>> inputs(n_);
  for (const auto& [reporter, payload] : messages) {
    ByteReader r(payload);
    if (r.u8() != kHeardTag) {
      throw DecodeError("expected round-1 heard message");
    }
    const std::uint32_t count = r.u32();
    for (std::uint32_t i = 0; i < count; ++i) {
      const ProcessId q = r.u32();
      const Value v = value_from_int(r.u8());
      RCP_EXPECT(q < n_, "heard report names unknown process");
      adj[q][reporter] = true;
      inputs[q] = v;
    }
    r.expect_done();
  }

  const auto closure = transitive_closure(std::move(adj));
  if (!closure_strongly_connected(closure)) {
    decision_ = Value::zero;
    return;
  }
  // Spanning strong connectivity implies we heard (transitively) from
  // everyone, so every input is known.
  std::vector<Value> all_inputs(n_);
  for (ProcessId q = 0; q < n_; ++q) {
    RCP_INVARIANT(inputs[q].has_value(),
                  "spanning closure but missing an input");
    all_inputs[q] = *inputs[q];
  }
  decision_ = bivalent_function(all_inputs);
}

}  // namespace rcp::core
