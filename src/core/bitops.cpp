// Kernel dispatch table: scalar by default, upgraded to AVX2 during static
// initialization when the backend is compiled in (RCP_ENABLE_AVX2) and the
// CPU reports support. The AVX2 entry points themselves live in
// bitops_avx2.cpp — the only translation unit built with -mavx2 and the
// only one allowed to include <immintrin.h> (rcp-lint os-exclusive rule).

#include "core/bitops.hpp"

namespace rcp::core::bitops {

namespace detail {

#if defined(RCP_ENABLE_AVX2)
// Implemented in bitops_avx2.cpp.
std::size_t popcount_words_avx2(const std::uint64_t* words,
                                std::size_t count) noexcept;
void fill_words_avx2(std::uint64_t* words, std::size_t count,
                     std::uint64_t value) noexcept;
void copy_words_avx2(std::uint64_t* dst, const std::uint64_t* src,
                     std::size_t count) noexcept;
void or_words_avx2(std::uint64_t* dst, const std::uint64_t* src,
                   std::size_t count) noexcept;
bool avx2_runtime_supported() noexcept;
#endif

namespace {

struct Dispatch {
  KernelTable table{};  // scalar defaults from the member initializers
  Backend backend = Backend::scalar;

  Dispatch() noexcept {
#if defined(RCP_ENABLE_AVX2)
    if (avx2_runtime_supported()) {
      table.popcount = &popcount_words_avx2;
      table.fill = &fill_words_avx2;
      table.copy = &copy_words_avx2;
      table.bit_or = &or_words_avx2;
      backend = Backend::avx2;
    }
#endif
  }
};

// Function-local static: initialized on first use, so kernels dispatched
// from other translation units' static initializers still see a resolved
// table (no static-init-order dependence).
Dispatch& dispatch() noexcept {
  static Dispatch instance;
  return instance;
}

}  // namespace

const KernelTable& kernels() noexcept { return dispatch().table; }

}  // namespace detail

Backend active_backend() noexcept { return detail::dispatch().backend; }

const char* backend_name(Backend backend) noexcept {
  switch (backend) {
    case Backend::scalar:
      return "scalar";
    case Backend::avx2:
      return "avx2";
  }
  return "unknown";
}

}  // namespace rcp::core::bitops
