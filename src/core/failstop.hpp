// Figure 1: the k-resilient consensus protocol for the fail-stop case,
// k <= floor((n-1)/2) (Theorem 2).
//
// Each phase a process broadcasts (phaseno, value, cardinality) and waits
// for n-k phase-t messages. A message whose cardinality exceeds n/2 is a
// *witness* for its value. At the end of a phase the process adopts the
// witnessed value if any (the paper proves at most one value can be
// witnessed), otherwise the majority value, and sets its cardinality to the
// size of that value's message set. It decides i upon seeing more than k
// witnesses for i, then broadcasts two final batches — (t, i, n-k) and
// (t+1, i, n-k) — and exits the protocol.
//
// Faithfulness notes:
//  - Messages from future phases are re-sent to self (the pseudocode's
//    `send(p, msg)` requeue device); messages from past phases are dropped.
//  - Counting overshoot is impossible: the phase ends at exactly n-k
//    phase-t messages, later ones arrive into a higher phase and drop.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "common/process.hpp"
#include "common/types.hpp"
#include "core/params.hpp"

namespace rcp::core {

class FailStopConsensus final : public sim::Process {
 public:
  /// Validating factory: throws unless k <= floor((n-1)/2).
  [[nodiscard]] static std::unique_ptr<FailStopConsensus> make(
      ConsensusParams params, Value initial_value);

  /// For lower-bound experiments only: skips the resilience-bound check.
  [[nodiscard]] static std::unique_ptr<FailStopConsensus> make_unchecked(
      ConsensusParams params, Value initial_value);

  void on_start(sim::Context& ctx) override;
  void on_message(sim::Context& ctx, const sim::Envelope& env) override;
  [[nodiscard]] Phase phase() const noexcept override { return phaseno_; }

  // White-box observers for tests and experiment harnesses.
  [[nodiscard]] Value value() const noexcept { return value_; }
  [[nodiscard]] std::uint32_t cardinality() const noexcept {
    return cardinality_;
  }
  [[nodiscard]] std::optional<Value> decision() const noexcept {
    return decision_;
  }
  [[nodiscard]] bool halted() const noexcept { return halted_; }
  [[nodiscard]] const ValueCounts& witness_counts() const noexcept {
    return witness_count_;
  }

 private:
  FailStopConsensus(ConsensusParams params, Value initial_value) noexcept;

  void begin_phase(sim::Context& ctx);
  void end_phase(sim::Context& ctx);

  ConsensusParams params_;
  Value value_;
  std::uint32_t cardinality_ = 1;
  Phase phaseno_ = 0;
  ValueCounts message_count_;
  ValueCounts witness_count_;
  std::optional<Value> decision_;
  bool halted_ = false;
};

}  // namespace rcp::core
