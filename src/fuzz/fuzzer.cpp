#include "fuzz/fuzzer.hpp"

#include <algorithm>
#include <ostream>
#include <utility>

#include "common/error.hpp"
#include "common/json.hpp"
#include "fuzz/minimize.hpp"
#include "fuzz/mutate.hpp"
#include "runtime/seeding.hpp"
#include "runtime/trial_pool.hpp"

namespace rcp::fuzz {

namespace {

void fold_stats(FuzzStats& stats, const ExecResult& r) {
  ++stats.executions;
  switch (r.status) {
    case sim::RunStatus::all_decided:
      ++stats.decided;
      break;
    case sim::RunStatus::quiescent:
      ++stats.quiescent;
      break;
    case sim::RunStatus::step_limit:
      ++stats.step_limit;
      break;
  }
  stats.quorum_boundary += r.quorum_boundary ? 1 : 0;
  stats.near_boundary += r.near_boundary ? 1 : 0;
  stats.near_disagreement += r.near_disagreement ? 1 : 0;
  stats.dedup_overflow += r.dedup_overflow ? 1 : 0;
  stats.agreement_violations += r.agreement ? 0 : 1;
}

char hex_digit(std::uint64_t v) noexcept {
  return static_cast<char>(v < 10 ? '0' + v : 'a' + (v - 10));
}

std::string hex64(std::uint64_t v) {
  std::string out = "0x";
  for (int shift = 60; shift >= 0; shift -= 4) {
    out += hex_digit((v >> shift) & 0xf);
  }
  return out;
}

/// Signal priority for golden emission, most severe first.
struct SignalSpec {
  const char* name;
  bool (*matches)(const ExecResult&);
  bool (*keep)(const ExecResult&);
};

constexpr SignalSpec kSignals[] = {
    {"agreement-violation", [](const ExecResult& r) { return !r.agreement; },
     [](const ExecResult& r) { return !r.agreement; }},
    {"near-disagreement",
     [](const ExecResult& r) { return r.agreement && r.near_disagreement; },
     [](const ExecResult& r) { return r.near_disagreement; }},
    {"dedup-overflow",
     [](const ExecResult& r) {
       return r.agreement && !r.near_disagreement && r.dedup_overflow;
     },
     [](const ExecResult& r) { return r.dedup_overflow; }},
    {"quorum-boundary",
     [](const ExecResult& r) {
       return r.agreement && !r.near_disagreement && !r.dedup_overflow &&
              r.quorum_boundary;
     },
     [](const ExecResult& r) { return r.quorum_boundary; }},
};

}  // namespace

std::string EmittedPlan::file_name() const {
  std::string name = "fuzz_";
  name += protocol_token(plan.spec.protocol);
  name += '_';
  name += signal;
  name += '_';
  const std::uint64_t h = plan.content_hash();
  for (int shift = 60; shift >= 32; shift -= 4) {
    name += hex_digit((h >> shift) & 0xf);
  }
  name += ".plan";
  return name;
}

Fuzzer::Fuzzer(FuzzConfig cfg) : cfg_(cfg) {
  RCP_EXPECT(cfg_.batch > 0, "batch must be positive");
  RCP_EXPECT(cfg_.params.n > 0, "n must be positive");
}

FuzzOutcome Fuzzer::run() {
  FuzzOutcome out;
  runtime::TrialPool pool(cfg_.threads);

  // Trial index: global, monotonically increasing across seed corpus and
  // every mutation batch — the sole source of per-trial randomness.
  std::uint64_t trial = 0;

  const auto run_batch = [&](const std::vector<SchedulePlan>& plans) {
    std::vector<ExecResult> results(plans.size());
    pool.for_each(plans.size(), [&](std::uint64_t job, std::uint32_t) {
      results[job] = execute(plans[job]);
    });
    // Sequential fold in trial order: admission order (hence the corpus
    // digest) is independent of which worker finished first.
    for (std::size_t i = 0; i < plans.size(); ++i) {
      fold_stats(out.stats, results[i]);
      if (out.coverage.add(results[i].coverage_key)) {
        out.corpus.add({plans[i], results[i]});
      }
    }
  };

  // Seed corpus.
  {
    auto seeds = seed_corpus(cfg_.protocol, cfg_.params,
                             runtime::trial_seed(cfg_.seed, trial));
    trial += seeds.size();
    run_batch(seeds);
  }

  // Mutation batches against a frozen corpus snapshot per batch.
  while (out.stats.executions < cfg_.budget) {
    const std::size_t snapshot = out.corpus.size();
    std::vector<SchedulePlan> plans;
    plans.reserve(cfg_.batch);
    for (std::uint32_t i = 0; i < cfg_.batch; ++i) {
      Rng rng(runtime::trial_seed(cfg_.seed, trial++));
      const auto& parent =
          out.corpus.entry(static_cast<std::size_t>(rng.below(snapshot)));
      plans.push_back(mutate(parent.plan, rng));
    }
    run_batch(plans);
  }

  // Golden emission: walk signals by severity, corpus in admission order.
  for (const SignalSpec& sig : kSignals) {
    for (const CorpusEntry& entry : out.corpus.entries()) {
      if (out.emitted.size() >= cfg_.max_emit) {
        break;
      }
      if (!sig.matches(entry.result)) {
        continue;
      }
      SchedulePlan plan = entry.plan;
      if (cfg_.minimize) {
        plan = minimize(plan, sig.keep, cfg_.minimize_attempts);
      }
      ExecResult final_result = execute(plan);
      plan.expect.present = true;
      plan.expect.status = final_result.status;
      plan.expect.steps = final_result.steps;
      plan.expect.trace_digest = final_result.trace_digest;
      plan.expect.state_digest = final_result.state_digest;
      out.emitted.push_back({sig.name, std::move(plan), final_result});
      break;  // one golden per signal class keeps the set curated
    }
  }
  return out;
}

void write_report(std::ostream& os, const FuzzConfig& cfg,
                  const FuzzOutcome& outcome) {
  bench::JsonWriter w(os);
  w.begin_object();
  w.field("schema", "rcp-fuzz-v1");
  w.field("protocol", protocol_token(cfg.protocol));
  w.field("n", cfg.params.n);
  w.field("k", cfg.params.k);
  w.field("seed", cfg.seed);
  w.field("budget", cfg.budget);
  w.field("batch", cfg.batch);
  w.field("executions", outcome.stats.executions);
  w.field("corpus_size", static_cast<std::uint64_t>(outcome.corpus.size()));
  w.field("coverage_points",
          static_cast<std::uint64_t>(outcome.coverage.size()));
  w.field("corpus_digest", hex64(outcome.corpus.digest()));
  w.field("coverage_digest", hex64(outcome.coverage.digest()));
  w.key("status_counts");
  w.begin_object();
  w.field("decided", outcome.stats.decided);
  w.field("quiescent", outcome.stats.quiescent);
  w.field("step_limit", outcome.stats.step_limit);
  w.end_object();
  w.key("signals");
  w.begin_object();
  w.field("quorum_boundary", outcome.stats.quorum_boundary);
  w.field("near_boundary", outcome.stats.near_boundary);
  w.field("near_disagreement", outcome.stats.near_disagreement);
  w.field("dedup_overflow", outcome.stats.dedup_overflow);
  w.field("agreement_violations", outcome.stats.agreement_violations);
  w.end_object();
  w.key("emitted");
  w.begin_array();
  for (const EmittedPlan& e : outcome.emitted) {
    w.begin_object();
    w.field("file", e.file_name());
    w.field("signal", e.signal);
    w.field("status", status_token(e.result.status));
    w.field("steps", e.result.steps);
    w.field("trace_digest", hex64(e.result.trace_digest));
    w.field("state_digest", hex64(e.result.state_digest));
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << '\n';
}

}  // namespace rcp::fuzz
