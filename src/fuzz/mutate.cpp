#include "fuzz/mutate.hpp"

#include <algorithm>

#include "adversary/crash_plan.hpp"

namespace rcp::fuzz {

namespace {

constexpr std::size_t kMaxTape = 1 << 16;
constexpr std::size_t kMaxMutMoves = 8;
constexpr std::size_t kMaxMutCrashes = 4;

std::vector<Value> alternating(std::uint32_t n) {
  std::vector<Value> v(n, Value::zero);
  for (std::uint32_t i = 0; i < n; ++i) {
    v[i] = i % 2 == 0 ? Value::zero : Value::one;
  }
  return v;
}

/// Sorted sample of `count` distinct ids from [0, n).
std::vector<ProcessId> sample_cast(std::uint32_t n, std::uint32_t count,
                                   Rng& rng) {
  auto ids = rng.sample_without_replacement(n, count);
  std::sort(ids.begin(), ids.end());
  return {ids.begin(), ids.end()};
}

adversary::ScriptedMove random_move(Rng& rng) {
  adversary::ScriptedMove m;
  m.low_value = rng.bernoulli(0.5) ? Value::one : Value::zero;
  m.high_value = rng.bernoulli(0.5) ? Value::one : Value::zero;
  m.split256 = static_cast<std::uint8_t>(rng.below(256));
  m.echo_mode = static_cast<std::uint8_t>(rng.below(3));
  return m;
}

std::vector<std::uint32_t> random_tape(Rng& rng, std::size_t count) {
  std::vector<std::uint32_t> tape(count);
  for (auto& v : tape) {
    v = static_cast<std::uint32_t>(rng.next());
  }
  return tape;
}

bool supports_byzantine(adversary::ProtocolKind p) noexcept {
  // The zoo speaks Figure 2's wire format; against Fig 1 / the majority
  // variant those bytes fail to decode, so a cast there is dead weight.
  return p == adversary::ProtocolKind::malicious;
}

}  // namespace

std::vector<SchedulePlan> seed_corpus(adversary::ProtocolKind protocol,
                                      core::ConsensusParams params,
                                      std::uint64_t base_seed) {
  Rng rng(base_seed);
  const std::uint32_t n = params.n;
  const std::uint32_t k = params.k;

  const auto base = [&] {
    SchedulePlan p;
    p.spec.protocol = protocol;
    p.spec.params = params;
    p.spec.inputs = alternating(n);
    p.spec.seed = rng.next();
    p.tape_seed = rng.next();
    return p;
  };

  std::vector<SchedulePlan> out;
  out.push_back(base());  // fault-free baseline

  if (supports_byzantine(protocol) && k > 0) {
    for (const auto kind : {adversary::ByzantineKind::equivocator,
                            adversary::ByzantineKind::balancer,
                            adversary::ByzantineKind::babbler,
                            adversary::ByzantineKind::scripted}) {
      SchedulePlan p = base();
      p.spec.byzantine_kind = kind;
      p.spec.byzantine_ids = sample_cast(n, k, rng);
      if (kind == adversary::ByzantineKind::scripted) {
        p.spec.moves = {random_move(rng), random_move(rng)};
      }
      out.push_back(std::move(p));
    }
  }

  if (k > 0) {
    SchedulePlan p = base();  // crash-only variant (legal in every model)
    const std::uint32_t count = std::min(k, n);
    for (std::uint32_t i = 0; i < count; ++i) {
      adversary::CrashEvent c;
      c.victim = static_cast<ProcessId>(rng.below(n));
      c.by_phase = true;
      c.at_phase = 1 + rng.below(4);
      // Distinct victims: retry into the first free slot deterministically.
      while (std::any_of(p.spec.crashes.begin(), p.spec.crashes.end(),
                         [&](const auto& e) { return e.victim == c.victim; })) {
        c.victim = (c.victim + 1) % n;
      }
      p.spec.crashes.push_back(c);
    }
    out.push_back(std::move(p));
  }

  {
    SchedulePlan p = base();  // heavy-delay variant
    p.spec.phi_weight = 64;
    out.push_back(std::move(p));
  }

  for (auto& p : out) {
    p.validate();
  }
  return out;
}

SchedulePlan mutate(const SchedulePlan& parent, Rng& rng) {
  SchedulePlan p = parent;
  p.expect = {};  // children are new executions; no inherited golden
  const std::uint32_t n = p.spec.params.n;
  const std::uint32_t k = p.spec.params.k;

  const std::uint64_t ops = 1 + rng.below(3);
  for (std::uint64_t op = 0; op < ops; ++op) {
    switch (rng.below(10)) {
      case 0: {  // rewrite a tape window
        if (p.tape.empty()) {
          p.tape = random_tape(rng, 32 + rng.below(96));
        }
        const std::size_t pos = rng.below(p.tape.size());
        const std::size_t len =
            std::min<std::size_t>(1 + rng.below(16), p.tape.size() - pos);
        for (std::size_t i = 0; i < len; ++i) {
          p.tape[pos + i] = static_cast<std::uint32_t>(rng.next());
        }
        break;
      }
      case 1: {  // extend the explicit tape
        const std::size_t extra = 1 + rng.below(64);
        const auto tail = random_tape(rng, extra);
        p.tape.insert(p.tape.end(), tail.begin(), tail.end());
        if (p.tape.size() > kMaxTape) {
          p.tape.resize(kMaxTape);
        }
        break;
      }
      case 2: {  // truncate
        if (!p.tape.empty()) {
          p.tape.resize(rng.below(p.tape.size() + 1));
        }
        break;
      }
      case 3:
        p.tape_seed = rng.next();
        break;
      case 4:
        p.spec.seed = rng.next();
        break;
      case 5: {  // flip one input
        const auto i = static_cast<std::size_t>(rng.below(n));
        p.spec.inputs[i] = other(p.spec.inputs[i]);
        break;
      }
      case 6:
        p.spec.phi_weight = static_cast<std::uint32_t>(rng.below(65));
        break;
      case 7: {  // resample the Byzantine cast
        if (!supports_byzantine(p.spec.protocol) || k == 0) {
          break;
        }
        const auto count = static_cast<std::uint32_t>(rng.below(k + 1));
        p.spec.byzantine_ids = sample_cast(n, count, rng);
        if (!p.spec.byzantine_ids.empty()) {
          constexpr adversary::ByzantineKind kKinds[] = {
              adversary::ByzantineKind::silent,
              adversary::ByzantineKind::equivocator,
              adversary::ByzantineKind::balancer,
              adversary::ByzantineKind::babbler,
              adversary::ByzantineKind::scripted,
          };
          p.spec.byzantine_kind = kKinds[rng.below(5)];
        }
        if (p.spec.byzantine_kind == adversary::ByzantineKind::scripted &&
            p.spec.moves.empty()) {
          p.spec.moves = {random_move(rng)};
        }
        break;
      }
      case 8: {  // perturb the move script
        if (p.spec.moves.empty()) {
          p.spec.moves.push_back(random_move(rng));
        } else if (rng.bernoulli(0.3) && p.spec.moves.size() < kMaxMutMoves) {
          p.spec.moves.push_back(random_move(rng));
        } else if (rng.bernoulli(0.2) && p.spec.moves.size() > 1) {
          p.spec.moves.pop_back();
        } else {
          p.spec.moves[rng.below(p.spec.moves.size())] = random_move(rng);
        }
        break;
      }
      case 9: {  // perturb the crash schedule
        if (p.spec.crashes.size() < std::min<std::size_t>(kMaxMutCrashes, n) &&
            rng.bernoulli(0.5)) {
          adversary::CrashEvent c;
          c.victim = static_cast<ProcessId>(rng.below(n));
          c.by_phase = rng.bernoulli(0.7);
          if (c.by_phase) {
            c.at_phase = rng.below(8);
          } else {
            c.at_step = rng.below(2048);
          }
          p.spec.crashes.push_back(c);
        } else if (!p.spec.crashes.empty()) {
          p.spec.crashes.erase(p.spec.crashes.begin() +
                               static_cast<std::ptrdiff_t>(
                                   rng.below(p.spec.crashes.size())));
        }
        break;
      }
      default:
        break;
    }
  }
  p.validate();
  return p;
}

}  // namespace rcp::fuzz
