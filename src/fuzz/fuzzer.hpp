// The coverage-guided fuzzing loop.
//
// Batch-synchronous search, bit-reproducible at any thread count:
//   - the batch size is a fixed constant independent of the worker count;
//   - trial t's mutation randomness is Rng(runtime::trial_seed(seed, t)) —
//     a pure function of the global trial index;
//   - every batch's plans are generated up front against a corpus snapshot
//     frozen at the batch boundary, executed in parallel on a TrialPool,
//     and folded into corpus/coverage sequentially in trial-index order.
// Two runs with the same (seed, budget) therefore admit the same plans in
// the same order whether they ran on 1 thread or 64 — the corpus digest is
// the witness, and CI diffs it across thread counts.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "adversary/scenario.hpp"
#include "core/params.hpp"
#include "fuzz/corpus.hpp"
#include "fuzz/coverage.hpp"
#include "fuzz/executor.hpp"
#include "fuzz/plan.hpp"

namespace rcp::fuzz {

struct FuzzConfig {
  adversary::ProtocolKind protocol = adversary::ProtocolKind::malicious;
  core::ConsensusParams params{7, 2};
  std::uint64_t seed = 1;
  /// Total executions (seed corpus + mutated children, rounded up to whole
  /// batches).
  std::uint64_t budget = 256;
  /// Worker threads; 0 = hardware default. Never affects results.
  std::uint32_t threads = 0;
  /// Trials per batch — fixed constant, independent of `threads`.
  std::uint32_t batch = 32;
  /// Minimize interesting plans before emitting them as goldens.
  bool minimize = true;
  std::uint32_t minimize_attempts = 48;
  /// Max golden plans to emit (most severe signals first).
  std::uint32_t max_emit = 4;
};

struct FuzzStats {
  std::uint64_t executions = 0;
  std::uint64_t decided = 0;
  std::uint64_t quiescent = 0;
  std::uint64_t step_limit = 0;
  std::uint64_t quorum_boundary = 0;
  std::uint64_t near_boundary = 0;
  std::uint64_t near_disagreement = 0;
  std::uint64_t dedup_overflow = 0;
  std::uint64_t agreement_violations = 0;
};

/// A minimized interesting plan, golden digests embedded, ready to write to
/// tests/data/.
struct EmittedPlan {
  std::string signal;  ///< "agreement-violation" | "near-disagreement" | ...
  SchedulePlan plan;
  ExecResult result;

  /// Canonical file name: fuzz_<protocol>_<signal>_<hash8>.plan.
  [[nodiscard]] std::string file_name() const;
};

struct FuzzOutcome {
  FuzzStats stats;
  Corpus corpus;
  CoverageMap coverage;
  std::vector<EmittedPlan> emitted;
};

class Fuzzer {
 public:
  explicit Fuzzer(FuzzConfig cfg);

  /// Runs the whole search; deterministic in cfg (seed, budget, batch).
  [[nodiscard]] FuzzOutcome run();

 private:
  FuzzConfig cfg_;
};

/// rcp-fuzz-v1 JSON. Deliberately excludes thread count and wall-clock
/// timing so the report is byte-identical across thread counts (CI diffs
/// it); the CLI prints timing to stderr instead.
void write_report(std::ostream& os, const FuzzConfig& cfg,
                  const FuzzOutcome& outcome);

}  // namespace rcp::fuzz
