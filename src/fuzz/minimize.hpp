// Plan minimization: shrink an interesting plan while a predicate over its
// execution keeps holding (delta-debugging over the plan structure).
//
// Deterministic — no randomness, a fixed strategy order — so a given
// (plan, predicate) always minimizes to the same result:
//   1. drop the whole explicit tape (pure fallback stream often suffices),
//   2. binary-search the shortest explicit tape prefix,
//   3. drop crash events one at a time (last first),
//   4. drop scripted moves one at a time,
//   5. clamp max_steps to just past the steps the run actually used.
// Every candidate is re-executed; the attempt budget bounds total work.
#pragma once

#include <cstdint>
#include <functional>

#include "fuzz/executor.hpp"
#include "fuzz/plan.hpp"

namespace rcp::fuzz {

struct MinimizeStats {
  std::uint32_t attempts = 0;  ///< executions spent
  std::uint32_t accepted = 0;  ///< shrinking steps that kept the predicate
};

/// Returns the smallest plan found whose execution still satisfies `keep`.
/// Precondition: keep(execute(plan)) is true.
[[nodiscard]] SchedulePlan minimize(
    const SchedulePlan& plan,
    const std::function<bool(const ExecResult&)>& keep,
    std::uint32_t max_attempts = 64, MinimizeStats* stats = nullptr);

}  // namespace rcp::fuzz
