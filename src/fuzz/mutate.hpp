// Plan mutation and corpus seeding.
//
// All mutation randomness comes from the caller-supplied Rng (one per
// trial, derived via runtime::trial_seed), so the generated plan is a pure
// function of (parent, trial seed). Mutations keep plans inside
// SchedulePlan::validate()'s envelope by construction — clamped n/k, sorted
// byzantine casts within the resilience bound, capped tapes.
#pragma once

#include <vector>

#include "adversary/scenario.hpp"
#include "common/rng.hpp"
#include "core/params.hpp"
#include "fuzz/plan.hpp"

namespace rcp::fuzz {

/// The initial population for a (protocol, n, k) configuration: a no-fault
/// baseline, each zoo strategy at full cast, a scripted strategy, and a
/// crashy variant. Deterministic in `base_seed`.
[[nodiscard]] std::vector<SchedulePlan> seed_corpus(
    adversary::ProtocolKind protocol, core::ConsensusParams params,
    std::uint64_t base_seed);

/// One mutated child of `parent`. Always returns a valid plan.
[[nodiscard]] SchedulePlan mutate(const SchedulePlan& parent, Rng& rng);

}  // namespace rcp::fuzz
