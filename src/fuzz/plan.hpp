// SchedulePlan: the fuzzer's genome and the repo's golden-scenario format.
//
// A plan is a compact, replayable encoding of one complete adversarial
// execution: the protocol under test and its parameters, the input vector,
// the Byzantine cast (any zoo strategy or a fuzzer-mutable move script),
// the crash schedule, and a decision *tape* resolving every delivery-order
// and drop/delay choice (see tape.hpp). Running a plan is a pure function
// of its bytes — no wall clock, no global RNG — which is what makes plans
// mutable, minimizable, diffable and checkable into tests/data/.
//
// The text format (`rcp-plan-v1`) is line-oriented and canonical: serialize()
// always emits the same lines in the same order, so parse(serialize(p))
// round-trips byte-identically — the property the golden round-trip suite
// enforces for every checked-in plan. A plan may embed its expected outcome
// (`expect` line: status, steps, trace digest, state digest); replaying such
// a plan is a full golden regression test.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "adversary/crash_plan.hpp"
#include "adversary/scenario.hpp"
#include "common/types.hpp"
#include "core/params.hpp"
#include "sim/simulation.hpp"

namespace rcp::fuzz {

/// Everything about the system under test except the schedule itself.
struct PlanSpec {
  adversary::ProtocolKind protocol = adversary::ProtocolKind::malicious;
  core::ConsensusParams params{7, 2};
  /// One initial value per process (size n); Byzantine slots ignored.
  std::vector<Value> inputs;
  std::vector<ProcessId> byzantine_ids;
  adversary::ByzantineKind byzantine_kind = adversary::ByzantineKind::silent;
  /// Move table for ByzantineKind::scripted.
  std::vector<adversary::ScriptedMove> moves;
  std::vector<adversary::CrashEvent> crashes;
  /// Simulation seed: feeds the per-process RNG streams (babbler draws,
  /// randomized baselines) — the schedule itself comes from the tape.
  std::uint64_t seed = 1;
  std::uint64_t max_steps = 200'000;
  /// phi (delay) weight out of 256 for the tape's delivery decode.
  std::uint32_t phi_weight = 16;
  /// Net-nemesis knobs (ignored by the simulator; see nemesis.hpp).
  std::uint32_t net_drop_permille = 0;
  std::uint32_t net_delay_max_ms = 0;
  std::uint32_t net_disconnects = 0;
};

/// Embedded golden outcome; present on fuzzer-emitted scenario files.
struct PlanExpect {
  bool present = false;
  sim::RunStatus status = sim::RunStatus::all_decided;
  std::uint64_t steps = 0;
  std::uint64_t trace_digest = 0;
  std::uint64_t state_digest = 0;
};

struct SchedulePlan {
  PlanSpec spec;
  /// Seeds the SplitMix64 fallback stream once the tape is exhausted.
  std::uint64_t tape_seed = 0;
  /// Explicit schedule prefix; may be empty (pure fallback stream).
  std::vector<std::uint32_t> tape;
  PlanExpect expect;

  /// Canonical text form (see file header). Stable across runs.
  [[nodiscard]] std::string serialize() const;

  /// Parses a plan; throws std::runtime_error with a line-numbered message
  /// on malformed input. Accepts exactly the serialize() grammar.
  [[nodiscard]] static SchedulePlan parse(std::istream& in);
  [[nodiscard]] static SchedulePlan parse_string(const std::string& text);

  /// Structural validation (sizes, id ranges, caps that keep mutated plans
  /// executable). Throws std::runtime_error on violation.
  void validate() const;

  /// FNV-1a over the serialized bytes — the corpus identity of this plan.
  [[nodiscard]] std::uint64_t content_hash() const;
};

/// Plan -> the scenario vocabulary the adversary layer builds from.
[[nodiscard]] adversary::Scenario to_scenario(const SchedulePlan& plan);

/// Builds the simulation with the plan's tape driving both policies.
[[nodiscard]] std::unique_ptr<sim::Simulation> build(const SchedulePlan& plan);

[[nodiscard]] const char* protocol_token(adversary::ProtocolKind k) noexcept;
[[nodiscard]] const char* byzantine_token(adversary::ByzantineKind k) noexcept;
[[nodiscard]] const char* status_token(sim::RunStatus s) noexcept;

}  // namespace rcp::fuzz
