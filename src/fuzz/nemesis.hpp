// Net-level nemesis: replay a SchedulePlan's fault scenario against a live
// net::Cluster (real sockets, real threads) through the transport's
// deterministic drop/delay/disconnect injection — the Jepsen-style
// counterpart of the simulator runs.
//
// The mapping is deterministic in the plan bytes: the same protocol,
// inputs, Byzantine cast and phase-crash schedule run over TCP; the plan's
// net-* knobs become LinkFaults; disconnect events derive from the tape
// seed's SplitMix64 stream. The tape itself cannot dictate socket
// interleavings (the kernel schedules those), so the check is the paper's
// properties rather than a trace digest: every correct node decides, and
// their decision digests MATCH.
#pragma once

#include <cstdint>

#include "fuzz/plan.hpp"
#include "net/cluster.hpp"

namespace rcp::fuzz {

struct NemesisConfig {
  /// 0 = one thread per node; T > 0 = shared loops (see net::Cluster).
  std::uint32_t loop_threads = 0;
  std::uint32_t timeout_ms = 30000;
  /// 0 = ephemeral ports (parallel-test safe).
  std::uint16_t base_port = 0;
  net::Reactor::Backend backend = net::Reactor::Backend::automatic;
};

struct NemesisResult {
  /// Run finished without timeout or node-loop errors.
  bool completed = false;
  /// Every correct node decided and all decision digests agree.
  bool digests_match = false;
  /// FNV-1a over (id, decision) of correct nodes in id order.
  std::uint64_t decision_digest = 0;
  net::ClusterResult cluster;
};

/// The ClusterConfig a plan maps to (exposed for tests and the CLI).
[[nodiscard]] net::ClusterConfig nemesis_cluster_config(
    const SchedulePlan& plan, const NemesisConfig& cfg);

/// Builds and runs the cluster for `plan`.
[[nodiscard]] NemesisResult run_nemesis(const SchedulePlan& plan,
                                        const NemesisConfig& cfg);

}  // namespace rcp::fuzz
