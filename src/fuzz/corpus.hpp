// The corpus: every plan that contributed a new coverage key, in the
// deterministic order it was admitted (batch fold order — see fuzzer.cpp).
// The corpus digest chains each entry's content hash in admission order, so
// two runs with identical corpora (same plans, same order) produce the same
// digest — the bit-reproducibility witness the CLI prints and CI diffs
// across thread counts.
#pragma once

#include <cstdint>
#include <vector>

#include "fuzz/digest.hpp"
#include "fuzz/executor.hpp"
#include "fuzz/plan.hpp"

namespace rcp::fuzz {

struct CorpusEntry {
  SchedulePlan plan;
  ExecResult result;
};

class Corpus {
 public:
  void add(CorpusEntry entry) {
    digest_.mix(entry.plan.content_hash());
    entries_.push_back(std::move(entry));
  }

  [[nodiscard]] const std::vector<CorpusEntry>& entries() const noexcept {
    return entries_;
  }
  [[nodiscard]] const CorpusEntry& entry(std::size_t i) const {
    return entries_[i];
  }
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] std::uint64_t digest() const noexcept { return digest_.h; }

 private:
  std::vector<CorpusEntry> entries_;
  Digest digest_;
};

}  // namespace rcp::fuzz
