#include "fuzz/minimize.hpp"

#include <utility>

namespace rcp::fuzz {

namespace {

class Shrinker {
 public:
  Shrinker(SchedulePlan best, const std::function<bool(const ExecResult&)>& keep,
           std::uint32_t max_attempts)
      : best_(std::move(best)), keep_(keep), max_attempts_(max_attempts) {}

  /// Executes the candidate; adopts it when the predicate holds.
  bool try_adopt(SchedulePlan candidate) {
    if (stats_.attempts >= max_attempts_) {
      return false;
    }
    ++stats_.attempts;
    const ExecResult r = execute(candidate);
    if (!keep_(r)) {
      return false;
    }
    ++stats_.accepted;
    best_ = std::move(candidate);
    best_result_ = r;
    return true;
  }

  [[nodiscard]] bool exhausted() const noexcept {
    return stats_.attempts >= max_attempts_;
  }

  SchedulePlan best_;
  ExecResult best_result_;
  MinimizeStats stats_;

 private:
  const std::function<bool(const ExecResult&)>& keep_;
  std::uint32_t max_attempts_;
};

}  // namespace

SchedulePlan minimize(const SchedulePlan& plan,
                      const std::function<bool(const ExecResult&)>& keep,
                      std::uint32_t max_attempts, MinimizeStats* stats) {
  Shrinker s(plan, keep, max_attempts);
  s.best_result_ = execute(plan);  // caller guarantees keep() holds here

  // 1. No explicit tape at all.
  if (!s.best_.tape.empty()) {
    SchedulePlan c = s.best_;
    c.tape.clear();
    s.try_adopt(std::move(c));
  }

  // 2. Shortest explicit prefix (predicate need not be monotone in the
  // prefix length; binary search is a strong heuristic, not a proof).
  if (!s.best_.tape.empty()) {
    std::size_t lo = 0;
    std::size_t hi = s.best_.tape.size();
    while (lo < hi && !s.exhausted()) {
      const std::size_t mid = lo + (hi - lo) / 2;
      SchedulePlan c = s.best_;
      c.tape.resize(mid);
      if (s.try_adopt(std::move(c))) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
  }

  // 3. Crash events, last first (index stability while erasing).
  for (std::size_t i = s.best_.spec.crashes.size(); i-- > 0;) {
    if (s.exhausted()) {
      break;
    }
    SchedulePlan c = s.best_;
    c.spec.crashes.erase(c.spec.crashes.begin() +
                         static_cast<std::ptrdiff_t>(i));
    s.try_adopt(std::move(c));
  }

  // 4. Scripted moves, last first (an empty script stays valid: silent).
  for (std::size_t i = s.best_.spec.moves.size(); i-- > 0;) {
    if (s.exhausted()) {
      break;
    }
    SchedulePlan c = s.best_;
    c.spec.moves.erase(c.spec.moves.begin() + static_cast<std::ptrdiff_t>(i));
    s.try_adopt(std::move(c));
  }

  // 5. Tight step bound: replaying the golden costs exactly what it needs.
  {
    const std::uint64_t used = s.best_result_.steps;
    if (used + 64 < s.best_.spec.max_steps) {
      SchedulePlan c = s.best_;
      c.spec.max_steps = used + 64;
      s.try_adopt(std::move(c));
    }
  }

  if (stats != nullptr) {
    *stats = s.stats_;
  }
  return s.best_;
}

}  // namespace rcp::fuzz
