// Plan execution + coverage signal extraction.
//
// execute() runs a SchedulePlan to completion on the simulator, digesting
// the full trace, and probes protocol-internal state at a fixed step
// interval for the signals the corpus rewards:
//
//   quorum boundary  — some correct process's echo tally (Fig 2) sits at
//                      exactly floor((n+k)/2)+1, or its Fig 1 witness count
//                      just crossed k: the execution walked the edge the
//                      paper's agreement proof reasons about;
//   near boundary    — one echo/witness short of the above;
//   near disagreement— a correct process has decided v while another
//                      correct process is within one accepted message of
//                      deciding 1-v (or has near-boundary support for it);
//   dedup overflow   — the EchoEngine's flat dedup window spilled to its
//                      exact overflow ledger (phase skew > window);
//   phases/steps     — convergence-speed buckets.
//
// The probe interval is a fixed constant so the signal set is a pure
// function of the plan; dynamic_casts make the probes protocol-agnostic.
#pragma once

#include <cstdint>
#include <optional>

#include "common/types.hpp"
#include "fuzz/plan.hpp"
#include "sim/simulation.hpp"

namespace rcp::fuzz {

struct ExecResult {
  sim::RunStatus status = sim::RunStatus::all_decided;
  std::uint64_t steps = 0;
  std::uint64_t trace_digest = 0;
  std::uint64_t state_digest = 0;
  bool agreement = true;
  std::optional<Value> agreed_value;
  Phase max_phase = 0;
  std::uint64_t messages_sent = 0;
  std::uint64_t phi_steps = 0;

  // Coverage signals (see header comment).
  bool quorum_boundary = false;
  bool near_boundary = false;
  bool near_disagreement = false;
  bool dedup_overflow = false;
  std::uint64_t max_deferred = 0;

  /// Hash of the bucketized feature tuple; the corpus keeps one plan per
  /// distinct key.
  std::uint64_t coverage_key = 0;
};

/// Steps between protocol-state probes (fixed: part of the plan semantics).
inline constexpr std::uint64_t kProbeInterval = 16;

/// Runs the plan. The plan must be valid (see SchedulePlan::validate).
[[nodiscard]] ExecResult execute(const SchedulePlan& plan);

/// True when `r` matches the plan's embedded expectation (vacuously true
/// when the plan embeds none).
[[nodiscard]] bool matches_expect(const ExecResult& r,
                                  const SchedulePlan& plan) noexcept;

}  // namespace rcp::fuzz
