#include "fuzz/plan.hpp"

#include <charconv>
#include <istream>
#include <sstream>
#include <stdexcept>
#include <string_view>
#include <utility>

#include "fuzz/digest.hpp"
#include "fuzz/tape.hpp"

namespace rcp::fuzz {

namespace {

// Caps that keep any syntactically valid (or mutated) plan cheap enough to
// execute: the fuzzer runs thousands of plans per budget, and a parse-time
// bound beats an OOM or a multi-minute outlier mid-batch.
constexpr std::uint32_t kMaxN = 64;
constexpr std::size_t kMaxTape = 1 << 16;
constexpr std::uint64_t kMaxSteps = 5'000'000;
constexpr std::size_t kMaxMoves = 64;
constexpr std::uint32_t kMaxPhiWeight = 200;
constexpr std::size_t kTapeValuesPerLine = 16;

[[noreturn]] void fail(std::size_t line_no, const std::string& what) {
  throw std::runtime_error("rcp-plan-v1:" + std::to_string(line_no) + ": " +
                           what);
}

std::uint64_t parse_u64(std::string_view token, std::size_t line_no,
                        const char* what) {
  std::uint64_t v = 0;
  const char* first = token.data();
  const char* last = first + token.size();
  // Accept the 0x form the expect line uses for digests.
  int base = 10;
  if (token.size() > 2 && token[0] == '0' && token[1] == 'x') {
    base = 16;
    first += 2;
  }
  const auto [ptr, ec] = std::from_chars(first, last, v, base);
  if (ec != std::errc{} || ptr != last) {
    fail(line_no, std::string("bad ") + what + ": '" + std::string(token) +
                      "'");
  }
  return v;
}

/// Splits a line into whitespace-separated tokens.
std::vector<std::string_view> tokens_of(std::string_view line) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) {
      ++i;
    }
    const std::size_t start = i;
    while (i < line.size() && line[i] != ' ' && line[i] != '\t') {
      ++i;
    }
    if (i > start) {
      out.push_back(line.substr(start, i - start));
    }
  }
  return out;
}

char hex_digit(std::uint64_t v) noexcept {
  return static_cast<char>(v < 10 ? '0' + v : 'a' + (v - 10));
}

void append_hex(std::string& out, std::uint64_t v) {
  out += "0x";
  for (int shift = 60; shift >= 0; shift -= 4) {
    out += hex_digit((v >> shift) & 0xf);
  }
}

}  // namespace

const char* protocol_token(adversary::ProtocolKind k) noexcept {
  switch (k) {
    case adversary::ProtocolKind::fail_stop:
      return "fig1";
    case adversary::ProtocolKind::malicious:
      return "fig2";
    case adversary::ProtocolKind::majority:
      return "majority";
  }
  return "?";
}

const char* byzantine_token(adversary::ByzantineKind k) noexcept {
  switch (k) {
    case adversary::ByzantineKind::silent:
      return "silent";
    case adversary::ByzantineKind::equivocator:
      return "equivocator";
    case adversary::ByzantineKind::balancer:
      return "balancer";
    case adversary::ByzantineKind::babbler:
      return "babbler";
    case adversary::ByzantineKind::scripted:
      return "scripted";
  }
  return "?";
}

const char* status_token(sim::RunStatus s) noexcept {
  switch (s) {
    case sim::RunStatus::all_decided:
      return "decided";
    case sim::RunStatus::quiescent:
      return "quiescent";
    case sim::RunStatus::step_limit:
      return "step-limit";
  }
  return "?";
}

std::string SchedulePlan::serialize() const {
  std::string out;
  out.reserve(256 + tape.size() * 12);
  out += "rcp-plan-v1\n";
  out += "protocol ";
  out += protocol_token(spec.protocol);
  out += '\n';
  out += "n " + std::to_string(spec.params.n) + '\n';
  out += "k " + std::to_string(spec.params.k) + '\n';
  out += "inputs ";
  for (const Value v : spec.inputs) {
    out += v == Value::one ? '1' : '0';
  }
  out += '\n';
  if (!spec.byzantine_ids.empty()) {
    out += "byzantine ";
    out += byzantine_token(spec.byzantine_kind);
    for (const ProcessId b : spec.byzantine_ids) {
      out += ' ';
      out += std::to_string(b);
    }
    out += '\n';
  }
  for (const auto& m : spec.moves) {
    out += "move " + std::to_string(value_index(m.low_value)) + ' ' +
           std::to_string(value_index(m.high_value)) + ' ' +
           std::to_string(m.split256) + ' ' + std::to_string(m.echo_mode) +
           '\n';
  }
  for (const auto& c : spec.crashes) {
    if (c.by_phase) {
      out += "crash-phase " + std::to_string(c.victim) + ' ' +
             std::to_string(c.at_phase) + '\n';
    } else {
      out += "crash-step " + std::to_string(c.victim) + ' ' +
             std::to_string(c.at_step) + '\n';
    }
  }
  out += "seed " + std::to_string(spec.seed) + '\n';
  out += "max-steps " + std::to_string(spec.max_steps) + '\n';
  out += "phi-weight " + std::to_string(spec.phi_weight) + '\n';
  out += "net-drop-permille " + std::to_string(spec.net_drop_permille) + '\n';
  out += "net-delay-max-ms " + std::to_string(spec.net_delay_max_ms) + '\n';
  out += "net-disconnects " + std::to_string(spec.net_disconnects) + '\n';
  out += "tape-seed " + std::to_string(tape_seed) + '\n';
  for (std::size_t i = 0; i < tape.size(); i += kTapeValuesPerLine) {
    out += "tape";
    const std::size_t end = std::min(tape.size(), i + kTapeValuesPerLine);
    for (std::size_t j = i; j < end; ++j) {
      out += ' ';
      out += std::to_string(tape[j]);
    }
    out += '\n';
  }
  if (expect.present) {
    out += "expect ";
    out += status_token(expect.status);
    out += ' ' + std::to_string(expect.steps) + ' ';
    append_hex(out, expect.trace_digest);
    out += ' ';
    append_hex(out, expect.state_digest);
    out += '\n';
  }
  out += "end\n";
  return out;
}

SchedulePlan SchedulePlan::parse(std::istream& in) {
  SchedulePlan plan;
  plan.spec.params = {0, 0};
  std::string line;
  std::size_t line_no = 0;
  bool saw_header = false;
  bool saw_end = false;
  bool saw_inputs = false;
  while (std::getline(in, line)) {
    ++line_no;
    // Strip trailing CR (files may transit Windows tooling) and comments.
    if (!line.empty() && line.back() == '\r') {
      line.pop_back();
    }
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line.resize(hash);
    }
    const auto toks = tokens_of(line);
    if (toks.empty()) {
      continue;
    }
    if (!saw_header) {
      if (toks.size() != 1 || toks[0] != "rcp-plan-v1") {
        fail(line_no, "expected rcp-plan-v1 header");
      }
      saw_header = true;
      continue;
    }
    if (saw_end) {
      fail(line_no, "content after end");
    }
    const std::string_view key = toks[0];
    const auto arg_count = toks.size() - 1;
    if (key == "protocol") {
      if (arg_count != 1) {
        fail(line_no, "protocol takes one argument");
      }
      if (toks[1] == "fig1") {
        plan.spec.protocol = adversary::ProtocolKind::fail_stop;
      } else if (toks[1] == "fig2") {
        plan.spec.protocol = adversary::ProtocolKind::malicious;
      } else if (toks[1] == "majority") {
        plan.spec.protocol = adversary::ProtocolKind::majority;
      } else {
        fail(line_no, "unknown protocol '" + std::string(toks[1]) + "'");
      }
    } else if (key == "n") {
      plan.spec.params.n =
          static_cast<std::uint32_t>(parse_u64(toks[1], line_no, "n"));
    } else if (key == "k") {
      plan.spec.params.k =
          static_cast<std::uint32_t>(parse_u64(toks[1], line_no, "k"));
    } else if (key == "inputs") {
      if (arg_count != 1) {
        fail(line_no, "inputs takes one bitstring");
      }
      plan.spec.inputs.clear();
      for (const char c : toks[1]) {
        if (c != '0' && c != '1') {
          fail(line_no, "inputs must be 0/1");
        }
        plan.spec.inputs.push_back(c == '1' ? Value::one : Value::zero);
      }
      saw_inputs = true;
    } else if (key == "byzantine") {
      if (arg_count < 2) {
        fail(line_no, "byzantine takes a kind and at least one id");
      }
      if (toks[1] == "silent") {
        plan.spec.byzantine_kind = adversary::ByzantineKind::silent;
      } else if (toks[1] == "equivocator") {
        plan.spec.byzantine_kind = adversary::ByzantineKind::equivocator;
      } else if (toks[1] == "balancer") {
        plan.spec.byzantine_kind = adversary::ByzantineKind::balancer;
      } else if (toks[1] == "babbler") {
        plan.spec.byzantine_kind = adversary::ByzantineKind::babbler;
      } else if (toks[1] == "scripted") {
        plan.spec.byzantine_kind = adversary::ByzantineKind::scripted;
      } else {
        fail(line_no, "unknown byzantine kind '" + std::string(toks[1]) + "'");
      }
      plan.spec.byzantine_ids.clear();
      for (std::size_t i = 2; i < toks.size(); ++i) {
        plan.spec.byzantine_ids.push_back(static_cast<ProcessId>(
            parse_u64(toks[i], line_no, "byzantine id")));
      }
    } else if (key == "move") {
      if (arg_count != 4) {
        fail(line_no, "move takes low high split256 echo_mode");
      }
      adversary::ScriptedMove m;
      m.low_value = value_from_int(
          static_cast<int>(parse_u64(toks[1], line_no, "move low")));
      m.high_value = value_from_int(
          static_cast<int>(parse_u64(toks[2], line_no, "move high")));
      m.split256 = static_cast<std::uint8_t>(
          parse_u64(toks[3], line_no, "move split256") & 0xff);
      m.echo_mode = static_cast<std::uint8_t>(
          parse_u64(toks[4], line_no, "move echo_mode"));
      plan.spec.moves.push_back(m);
    } else if (key == "crash-step" || key == "crash-phase") {
      if (arg_count != 2) {
        fail(line_no, "crash takes victim and when");
      }
      adversary::CrashEvent c;
      c.victim =
          static_cast<ProcessId>(parse_u64(toks[1], line_no, "crash victim"));
      c.by_phase = key == "crash-phase";
      if (c.by_phase) {
        c.at_phase = parse_u64(toks[2], line_no, "crash phase");
      } else {
        c.at_step = parse_u64(toks[2], line_no, "crash step");
      }
      plan.spec.crashes.push_back(c);
    } else if (key == "seed") {
      plan.spec.seed = parse_u64(toks[1], line_no, "seed");
    } else if (key == "max-steps") {
      plan.spec.max_steps = parse_u64(toks[1], line_no, "max-steps");
    } else if (key == "phi-weight") {
      plan.spec.phi_weight =
          static_cast<std::uint32_t>(parse_u64(toks[1], line_no, "phi-weight"));
    } else if (key == "net-drop-permille") {
      plan.spec.net_drop_permille = static_cast<std::uint32_t>(
          parse_u64(toks[1], line_no, "net-drop-permille"));
    } else if (key == "net-delay-max-ms") {
      plan.spec.net_delay_max_ms = static_cast<std::uint32_t>(
          parse_u64(toks[1], line_no, "net-delay-max-ms"));
    } else if (key == "net-disconnects") {
      plan.spec.net_disconnects = static_cast<std::uint32_t>(
          parse_u64(toks[1], line_no, "net-disconnects"));
    } else if (key == "tape-seed") {
      plan.tape_seed = parse_u64(toks[1], line_no, "tape-seed");
    } else if (key == "tape") {
      for (std::size_t i = 1; i < toks.size(); ++i) {
        plan.tape.push_back(static_cast<std::uint32_t>(
            parse_u64(toks[i], line_no, "tape value")));
      }
    } else if (key == "expect") {
      if (arg_count != 4) {
        fail(line_no, "expect takes status steps trace state");
      }
      plan.expect.present = true;
      if (toks[1] == "decided") {
        plan.expect.status = sim::RunStatus::all_decided;
      } else if (toks[1] == "quiescent") {
        plan.expect.status = sim::RunStatus::quiescent;
      } else if (toks[1] == "step-limit") {
        plan.expect.status = sim::RunStatus::step_limit;
      } else {
        fail(line_no, "unknown expect status '" + std::string(toks[1]) + "'");
      }
      plan.expect.steps = parse_u64(toks[2], line_no, "expect steps");
      plan.expect.trace_digest = parse_u64(toks[3], line_no, "expect trace");
      plan.expect.state_digest = parse_u64(toks[4], line_no, "expect state");
    } else if (key == "end") {
      saw_end = true;
    } else {
      fail(line_no, "unknown key '" + std::string(key) + "'");
    }
  }
  if (!saw_header) {
    fail(line_no, "missing rcp-plan-v1 header");
  }
  if (!saw_end) {
    fail(line_no, "missing end line");
  }
  if (!saw_inputs) {
    fail(line_no, "missing inputs line");
  }
  plan.validate();
  return plan;
}

SchedulePlan SchedulePlan::parse_string(const std::string& text) {
  std::istringstream in(text);
  return parse(in);
}

void SchedulePlan::validate() const {
  const auto bad = [](const std::string& what) {
    throw std::runtime_error("invalid plan: " + what);
  };
  const std::uint32_t n = spec.params.n;
  if (n == 0 || n > kMaxN) {
    bad("n out of range [1, " + std::to_string(kMaxN) + "]");
  }
  if (spec.params.k >= n) {
    bad("k must be < n");
  }
  if (spec.inputs.size() != n) {
    bad("inputs size != n");
  }
  // Stay inside the protocol's proven resilience bound: the fuzzer searches
  // for violations *within* the paper's hypotheses, where any disagreement
  // is a real bug (beyond the bound, disagreement is expected — Theorems
  // 1 and 3 — and would drown the signal).
  const auto model = spec.protocol == adversary::ProtocolKind::fail_stop
                         ? core::FaultModel::fail_stop
                         : core::FaultModel::malicious;
  if (spec.params.k > core::max_resilience(model, n)) {
    bad("k beyond the resilience bound");
  }
  if (spec.byzantine_ids.size() > spec.params.k) {
    bad("more byzantine ids than k");
  }
  for (std::size_t i = 0; i < spec.byzantine_ids.size(); ++i) {
    if (spec.byzantine_ids[i] >= n) {
      bad("byzantine id outside [0, n)");
    }
    // Strictly increasing: one canonical serialization per cast.
    if (i > 0 && spec.byzantine_ids[i] <= spec.byzantine_ids[i - 1]) {
      bad("byzantine ids must be strictly increasing");
    }
  }
  if (spec.moves.size() > kMaxMoves) {
    bad("too many scripted moves");
  }
  for (const auto& m : spec.moves) {
    if (m.echo_mode > 2) {
      bad("move echo_mode outside [0, 2]");
    }
  }
  if (spec.crashes.size() > n) {
    bad("more crash events than processes");
  }
  for (const auto& c : spec.crashes) {
    if (c.victim >= n) {
      bad("crash victim outside [0, n)");
    }
  }
  if (spec.max_steps == 0 || spec.max_steps > kMaxSteps) {
    bad("max-steps out of range [1, " + std::to_string(kMaxSteps) + "]");
  }
  if (spec.phi_weight > kMaxPhiWeight) {
    bad("phi-weight out of range [0, " + std::to_string(kMaxPhiWeight) + "]");
  }
  if (spec.net_drop_permille > 300) {
    bad("net-drop-permille out of range [0, 300]");
  }
  if (spec.net_delay_max_ms > 50) {
    bad("net-delay-max-ms out of range [0, 50]");
  }
  if (spec.net_disconnects > n) {
    bad("net-disconnects out of range [0, n]");
  }
  if (tape.size() > kMaxTape) {
    bad("tape longer than " + std::to_string(kMaxTape));
  }
}

std::uint64_t SchedulePlan::content_hash() const { return fnv1a(serialize()); }

adversary::Scenario to_scenario(const SchedulePlan& plan) {
  adversary::Scenario s;
  s.protocol = plan.spec.protocol;
  s.params = plan.spec.params;
  s.inputs = plan.spec.inputs;
  s.byzantine_ids = plan.spec.byzantine_ids;
  s.byzantine_kind = plan.spec.byzantine_kind;
  s.scripted_moves = plan.spec.moves;
  s.crashes = adversary::CrashPlan(plan.spec.crashes);
  s.seed = plan.spec.seed;
  s.max_steps = plan.spec.max_steps;
  return s;
}

std::unique_ptr<sim::Simulation> build(const SchedulePlan& plan) {
  auto policies =
      make_tape_policies(plan.tape, plan.tape_seed, plan.spec.phi_weight);
  return adversary::build(to_scenario(plan), std::move(policies.delivery),
                          std::move(policies.scheduler));
}

}  // namespace rcp::fuzz
