// The decision tape: how a SchedulePlan drives the simulator.
//
// Every nondeterministic choice the simulation makes — which process steps,
// which buffered message it receives (or phi) — is resolved by consuming
// one 32-bit value from a shared tape cursor, in a fixed order (scheduler
// draw first, then delivery draw). When the explicit tape runs out, the
// cursor switches to a SplitMix64 stream rooted at the plan's tape seed, so
// *every* plan defines a total schedule: mutations can truncate, extend or
// rewrite the tape freely and the run stays well-defined, and minimization
// can binary-search the shortest explicit prefix that still triggers the
// behaviour of interest.
//
// Decoding (stable; plan files depend on it):
//   scheduler: actor = eligible[v % |eligible|]
//   delivery:  phi      if phi_weight > 0 and (v & 0xff) < phi_weight
//              index    = (v >> 8) % |mailbox| otherwise
// phi models the paper's arbitrarily long transmission delay, i.e. the
// drop/delay decisions of the schedule; runs stay bounded by max_steps.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "sim/delivery.hpp"
#include "sim/scheduler.hpp"

namespace rcp::fuzz {

/// Consumes the explicit tape, then an endless SplitMix64 fallback stream.
class TapeCursor {
 public:
  TapeCursor(std::vector<std::uint32_t> tape,
             std::uint64_t fallback_seed) noexcept
      : tape_(std::move(tape)), state_(fallback_seed) {}

  [[nodiscard]] std::uint32_t next() noexcept {
    if (pos_ < tape_.size()) {
      return tape_[pos_++];
    }
    ++fallback_draws_;
    return static_cast<std::uint32_t>(splitmix64(state_));
  }

  /// Values served from the explicit tape so far.
  [[nodiscard]] std::size_t consumed() const noexcept { return pos_; }
  /// Values served from the fallback stream so far.
  [[nodiscard]] std::uint64_t fallback_draws() const noexcept {
    return fallback_draws_;
  }

 private:
  std::vector<std::uint32_t> tape_;
  std::size_t pos_ = 0;
  std::uint64_t state_;
  std::uint64_t fallback_draws_ = 0;
};

/// Scheduler half of the tape: one cursor value per step.
class TapeScheduler final : public sim::SchedulerPolicy {
 public:
  explicit TapeScheduler(std::shared_ptr<TapeCursor> cursor) noexcept
      : cursor_(std::move(cursor)) {}

  [[nodiscard]] ProcessId pick(std::span<const ProcessId> eligible,
                               Rng& /*rng*/) override {
    const std::uint32_t v = cursor_->next();
    return eligible[v % eligible.size()];
  }

 private:
  std::shared_ptr<TapeCursor> cursor_;
};

/// Delivery half of the tape: one cursor value per delivery decision.
class TapeDelivery final : public sim::DeliveryPolicy {
 public:
  TapeDelivery(std::shared_ptr<TapeCursor> cursor,
               std::uint32_t phi_weight) noexcept
      : cursor_(std::move(cursor)), phi_weight_(phi_weight) {}

  [[nodiscard]] std::optional<std::size_t> pick(ProcessId /*receiver*/,
                                                const sim::Mailbox& mailbox,
                                                std::uint64_t /*now_step*/,
                                                Rng& /*rng*/) override {
    const std::uint32_t v = cursor_->next();
    if (phi_weight_ > 0 && (v & 0xffU) < phi_weight_) {
      return std::nullopt;
    }
    return static_cast<std::size_t>((v >> 8) % mailbox.size());
  }

 private:
  std::shared_ptr<TapeCursor> cursor_;
  std::uint32_t phi_weight_;
};

/// Both policy halves over one shared cursor.
struct TapePolicies {
  std::shared_ptr<TapeCursor> cursor;
  std::unique_ptr<sim::DeliveryPolicy> delivery;
  std::unique_ptr<sim::SchedulerPolicy> scheduler;
};

[[nodiscard]] inline TapePolicies make_tape_policies(
    std::vector<std::uint32_t> tape, std::uint64_t fallback_seed,
    std::uint32_t phi_weight) {
  auto cursor = std::make_shared<TapeCursor>(std::move(tape), fallback_seed);
  TapePolicies out;
  out.delivery = std::make_unique<TapeDelivery>(cursor, phi_weight);
  out.scheduler = std::make_unique<TapeScheduler>(cursor);
  out.cursor = std::move(cursor);
  return out;
}

}  // namespace rcp::fuzz
