#include "fuzz/executor.hpp"

#include <algorithm>
#include <array>

#include "core/failstop.hpp"
#include "core/malicious.hpp"
#include "fuzz/digest.hpp"

namespace rcp::fuzz {

namespace {

std::uint64_t log2_bucket(std::uint64_t v) noexcept {
  std::uint64_t b = 0;
  while (v > 1) {
    v >>= 1;
    ++b;
  }
  return b;
}

/// One probe pass over every correct process's protocol internals.
struct ProbeState {
  bool quorum_boundary = false;
  bool near_boundary = false;
  bool near_disagreement = false;
  bool dedup_overflow = false;
  std::uint64_t max_deferred = 0;

  void probe(sim::Simulation& s, const core::ConsensusParams& params) {
    // Near-disagreement needs a cross-process view: the decided values of
    // correct processes, and per undecided correct process the values it
    // has boundary-level support for.
    std::array<bool, 2> decided{false, false};
    std::array<bool, 2> near_decide{false, false};
    const std::uint32_t thr = params.echo_acceptance_threshold();
    for (ProcessId p = 0; p < s.n(); ++p) {
      if (s.is_faulty(p) || !s.alive(p)) {
        continue;
      }
      if (const auto d = s.decision_of(p)) {
        decided[value_index(*d)] = true;
      }
      auto& proc = s.process(p);
      if (const auto* mal = dynamic_cast<core::MaliciousConsensus*>(&proc)) {
        const core::EchoEngine& eng = mal->engine();
        for (ProcessId origin = 0; origin < s.n(); ++origin) {
          for (const Value v : kBothValues) {
            const std::uint32_t c = eng.echo_count(origin, v);
            if (c == thr) {
              quorum_boundary = true;
            } else if (c + 1 == thr) {
              near_boundary = true;
            }
          }
        }
        if (!mal->decision().has_value()) {
          for (const Value v : kBothValues) {
            // Decision fires at the same strictly-greater-than-(n+k)/2
            // threshold as acceptance; one accepted message short of it is
            // the dangerous state.
            if (mal->accepted_counts()[v] + 1 == thr) {
              near_decide[value_index(v)] = true;
            }
          }
        }
        if (eng.echo_overflow_size() > 0) {
          dedup_overflow = true;
        }
        max_deferred = std::max<std::uint64_t>(max_deferred,
                                               eng.deferred_count());
      } else if (const auto* fs =
                     dynamic_cast<core::FailStopConsensus*>(&proc)) {
        for (const Value v : kBothValues) {
          const std::uint32_t w = fs->witness_counts()[v];
          // Fig 1 decides on witness_count > k: k is the boundary, k+1 the
          // crossing.
          if (w == params.k + 1) {
            quorum_boundary = true;
          } else if (w == params.k && params.k > 0) {
            near_boundary = true;
          }
          if (!fs->decision().has_value() && w == params.k) {
            near_decide[value_index(v)] = true;
          }
        }
      }
    }
    for (const Value v : kBothValues) {
      // Decided v while someone is a hair from deciding 1-v (actual
      // disagreement — both decided — also lands here and additionally
      // flips the agreement flag in the result).
      const Value o = other(v);
      if (decided[value_index(v)] &&
          (near_decide[value_index(o)] || decided[value_index(o)])) {
        near_disagreement = true;
      }
    }
  }
};

std::uint64_t feature_hash(const SchedulePlan& plan, const ExecResult& r) {
  Digest d;
  // Config partition: runs of different systems never collide.
  d.mix(static_cast<std::uint64_t>(plan.spec.protocol));
  d.mix(plan.spec.params.n);
  d.mix(plan.spec.params.k);
  d.mix(static_cast<std::uint64_t>(plan.spec.byzantine_kind));
  d.mix(plan.spec.byzantine_ids.size());
  // Outcome features, bucketized.
  d.mix(static_cast<std::uint64_t>(r.status));
  d.mix(r.agreement ? 1 : 0);
  d.mix(r.agreed_value ? static_cast<std::uint64_t>(*r.agreed_value) : 2);
  d.mix(std::min<std::uint64_t>(r.max_phase, 15));
  d.mix(log2_bucket(r.steps + 1));
  d.mix(log2_bucket(r.messages_sent + 1));
  d.mix(r.steps > 0 ? (8 * r.phi_steps) / r.steps : 0);
  // Signal flags.
  d.mix((r.quorum_boundary ? 1ULL : 0) | (r.near_boundary ? 2ULL : 0) |
        (r.near_disagreement ? 4ULL : 0) | (r.dedup_overflow ? 8ULL : 0));
  d.mix(std::min<std::uint64_t>(log2_bucket(r.max_deferred + 1), 7));
  return d.h;
}

}  // namespace

ExecResult execute(const SchedulePlan& plan) {
  auto sim = build(plan);
  DigestTrace trace;
  sim->set_trace(&trace);
  sim->start();

  ProbeState probes;
  ExecResult r;
  std::uint64_t steps = 0;
  sim::RunStatus status = sim::RunStatus::step_limit;
  while (steps < plan.spec.max_steps) {
    if (sim->all_correct_decided()) {
      status = sim::RunStatus::all_decided;
      break;
    }
    if (!sim->step()) {
      status = sim::RunStatus::quiescent;
      break;
    }
    ++steps;
    if (steps % kProbeInterval == 0) {
      probes.probe(*sim, plan.spec.params);
    }
  }
  if (status == sim::RunStatus::step_limit && sim->all_correct_decided()) {
    status = sim::RunStatus::all_decided;
  }
  probes.probe(*sim, plan.spec.params);  // final state counts too

  r.status = status;
  r.steps = sim->metrics().steps;
  r.trace_digest = trace.hash();
  r.state_digest = state_digest(*sim);
  r.agreement = sim->agreement_holds();
  r.agreed_value = sim->agreed_value();
  r.max_phase = sim->metrics().max_phase;
  r.messages_sent = sim->metrics().messages_sent;
  r.phi_steps = sim->metrics().phi_steps;
  r.quorum_boundary = probes.quorum_boundary;
  r.near_boundary = probes.near_boundary;
  r.near_disagreement = probes.near_disagreement;
  r.dedup_overflow = probes.dedup_overflow;
  r.max_deferred = probes.max_deferred;
  r.coverage_key = feature_hash(plan, r);
  return r;
}

bool matches_expect(const ExecResult& r, const SchedulePlan& plan) noexcept {
  if (!plan.expect.present) {
    return true;
  }
  return r.status == plan.expect.status && r.steps == plan.expect.steps &&
         r.trace_digest == plan.expect.trace_digest &&
         r.state_digest == plan.expect.state_digest;
}

}  // namespace rcp::fuzz
