// Execution digests shared by the fuzzer, the golden replay tests and the
// plan files themselves.
//
// The algorithm is the FNV-1a mixing the trace-digest suite has pinned
// since PR 2 (tests/sim/trace_digest_test.cpp): an event digest over every
// trace record and a state digest over the final simulation state. A plan
// that embeds its expected digests is therefore a *golden scenario*: any
// simulator change that shifts one RNG draw, one delivery choice or one
// message byte fails its replay.
#pragma once

#include <cstdint>
#include <string_view>

#include "common/types.hpp"
#include "sim/simulation.hpp"
#include "sim/trace.hpp"

namespace rcp::fuzz {

inline constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

/// Incremental FNV-1a over 64-bit words (byte by byte, little-endian).
struct Digest {
  std::uint64_t h = kFnvOffset;

  void mix(std::uint64_t v) noexcept {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= kFnvPrime;
    }
  }
};

/// FNV-1a over a byte string (used for plan content hashes).
[[nodiscard]] inline std::uint64_t fnv1a(std::string_view bytes) noexcept {
  std::uint64_t h = kFnvOffset;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnvPrime;
  }
  return h;
}

/// TraceSink mixing every event into one digest — identical field order to
/// the trace-digest golden suite.
class DigestTrace final : public sim::TraceSink {
 public:
  void record(const sim::Event& e) override {
    d_.mix(static_cast<std::uint64_t>(e.kind));
    d_.mix(e.step);
    d_.mix(e.process);
    d_.mix(e.peer);
    d_.mix(e.payload_size);
    d_.mix(e.decision.has_value() ? static_cast<std::uint64_t>(*e.decision)
                                  : 2);
  }

  [[nodiscard]] std::uint64_t hash() const noexcept { return d_.h; }

 private:
  Digest d_;
};

/// Final-state digest: decisions, liveness, faultiness, mailbox depths and
/// the metrics counters.
[[nodiscard]] inline std::uint64_t state_digest(const sim::Simulation& s) {
  Digest d;
  for (ProcessId p = 0; p < s.n(); ++p) {
    const auto dec = s.decision_of(p);
    d.mix(dec.has_value() ? static_cast<std::uint64_t>(*dec) : 2);
    d.mix(s.alive(p) ? 1 : 0);
    d.mix(s.is_faulty(p) ? 1 : 0);
    d.mix(s.mailbox_size(p));
  }
  d.mix(s.metrics().steps);
  d.mix(s.metrics().messages_sent);
  d.mix(s.metrics().messages_delivered);
  d.mix(s.metrics().phi_steps);
  d.mix(s.metrics().max_phase);
  return d.h;
}

}  // namespace rcp::fuzz
