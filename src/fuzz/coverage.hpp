// Coverage accounting: the set of distinct feature keys seen so far.
//
// A key is the bucketized feature hash execute() computes; a plan earns a
// corpus slot iff its key is new. The digest is order-independent (keys are
// wrap-added after remixing), so it is identical at any thread count as
// long as the same *set* of keys was reached — which batch-synchronous
// fuzzing guarantees.
#pragma once

#include <cstdint>
#include <unordered_set>

namespace rcp::fuzz {

class CoverageMap {
 public:
  /// Records the key; true iff it was not yet present.
  bool add(std::uint64_t key) {
    if (!keys_.insert(key).second) {
      return false;
    }
    // Remix before the commutative add so near-identical keys don't cancel.
    std::uint64_t z = key + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    digest_ += z ^ (z >> 31);
    return true;
  }

  [[nodiscard]] bool contains(std::uint64_t key) const {
    return keys_.contains(key);
  }
  [[nodiscard]] std::size_t size() const noexcept { return keys_.size(); }
  [[nodiscard]] std::uint64_t digest() const noexcept { return digest_; }

 private:
  std::unordered_set<std::uint64_t> keys_;
  std::uint64_t digest_ = 0;
};

}  // namespace rcp::fuzz
