#include "fuzz/nemesis.hpp"

#include <memory>
#include <utility>

#include "core/failstop.hpp"
#include "core/majority.hpp"
#include "core/malicious.hpp"
#include "fuzz/digest.hpp"

namespace rcp::fuzz {

namespace {

std::unique_ptr<sim::Process> make_protocol_process(const PlanSpec& spec,
                                                    Value input) {
  switch (spec.protocol) {
    case adversary::ProtocolKind::fail_stop:
      return core::FailStopConsensus::make(spec.params, input);
    case adversary::ProtocolKind::malicious:
      return core::MaliciousConsensus::make(spec.params, input);
    case adversary::ProtocolKind::majority:
      return core::MajorityConsensus::make(spec.params, input);
  }
  return nullptr;
}

}  // namespace

net::ClusterConfig nemesis_cluster_config(const SchedulePlan& plan,
                                          const NemesisConfig& cfg) {
  const PlanSpec& spec = plan.spec;
  net::ClusterConfig cluster;
  cluster.n = spec.params.n;
  cluster.seed = spec.seed;
  cluster.base_port = cfg.base_port;
  cluster.timeout_ms = cfg.timeout_ms;
  cluster.loop_threads = cfg.loop_threads;
  cluster.backend = cfg.backend;

  cluster.link_faults.drop_probability = spec.net_drop_permille / 1000.0;
  cluster.link_faults.delay_min_ms = 0;
  cluster.link_faults.delay_max_ms = spec.net_delay_max_ms;

  // Disconnect schedule: a pure function of the tape seed, so the same plan
  // partitions the same links after the same delivery counts on every run.
  std::uint64_t state = plan.tape_seed ^ 0xa02bdbf7bb3c0a7ULL;
  for (std::uint32_t i = 0; i < spec.net_disconnects; ++i) {
    const std::uint64_t v = splitmix64(state);
    const auto node = static_cast<ProcessId>(v % spec.params.n);
    auto peer = static_cast<ProcessId>((v >> 16) % spec.params.n);
    if (peer == node) {
      peer = (peer + 1) % spec.params.n;
    }
    net::DisconnectEvent event;
    event.peer = peer;
    event.after_delivered = 1 + ((v >> 32) % 64);
    cluster.disconnects.emplace_back(node, event);
  }

  for (const auto& c : spec.crashes) {
    // Step-indexed crashes have no transport analogue (there is no global
    // step counter on a live mesh); phase crashes map one to one.
    if (c.by_phase) {
      cluster.crashes.emplace_back(c.victim, c.at_phase);
    }
  }
  cluster.arbitrary_faulty = spec.byzantine_ids;
  return cluster;
}

NemesisResult run_nemesis(const SchedulePlan& plan, const NemesisConfig& cfg) {
  const PlanSpec& spec = plan.spec;
  std::vector<bool> is_byz(spec.params.n, false);
  for (const ProcessId b : spec.byzantine_ids) {
    is_byz[b] = true;
  }

  net::Cluster cluster(
      nemesis_cluster_config(plan, cfg), [&](ProcessId id) {
        if (is_byz[id]) {
          return adversary::make_byzantine(spec.byzantine_kind, spec.params,
                                           spec.moves);
        }
        return make_protocol_process(spec, spec.inputs[id]);
      });

  NemesisResult out;
  out.cluster = cluster.run();

  bool any_error = false;
  Digest d;
  for (const net::NodeOutcome& node : out.cluster.nodes) {
    if (!node.error.empty()) {
      any_error = true;
    }
    if (!node.correct) {
      continue;
    }
    d.mix(node.id);
    d.mix(node.decision.has_value()
              ? static_cast<std::uint64_t>(*node.decision)
              : 2);
  }
  out.decision_digest = d.h;
  out.completed = !out.cluster.timed_out && !any_error;
  out.digests_match =
      out.cluster.all_correct_decided && out.cluster.agreement;
  return out;
}

}  // namespace rcp::fuzz
