// Delivery policies: how the nondeterministic receive() choice is resolved.
//
// The paper postulates probabilistic behaviour of the message system: "at
// any phase, every possible view has some fixed probability [>= epsilon] of
// being the one seen". UniformDelivery realises that assumption (every
// buffered message equally likely). Other policies model arrival-order
// delivery and adversarial delay; the latter live in src/adversary.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>

#include "common/rng.hpp"
#include "sim/mailbox.hpp"

namespace rcp::sim {

/// Chooses which buffered message (by index into mailbox.contents()) the
/// next receive() of `receiver` returns, or nullopt for the null value phi.
///
/// Contract: a returned index must be < mailbox.size(). Returning nullopt
/// models an arbitrarily long transmission delay; the simulator guarantees
/// global progress by bounding consecutive phi results (see SimConfig).
class DeliveryPolicy {
 public:
  virtual ~DeliveryPolicy() = default;

  [[nodiscard]] virtual std::optional<std::size_t> pick(
      ProcessId receiver, const Mailbox& mailbox, std::uint64_t now_step,
      Rng& rng) = 0;

  /// True if take() must preserve arrival order for this policy.
  [[nodiscard]] virtual bool order_preserving() const noexcept { return false; }
};

/// The paper's probabilistic message system: every buffered message is
/// equally likely to be the one received. With phi_probability > 0, a step
/// can also observe the null value even though the buffer is non-empty,
/// modelling arbitrarily long delays.
class UniformDelivery final : public DeliveryPolicy {
 public:
  explicit UniformDelivery(double phi_probability = 0.0);

  [[nodiscard]] std::optional<std::size_t> pick(ProcessId receiver,
                                                const Mailbox& mailbox,
                                                std::uint64_t now_step,
                                                Rng& rng) override;

 private:
  double phi_probability_;
};

/// First-in-first-out delivery per receiver (a well-behaved network). Note
/// the paper does NOT assume FIFO; this policy exists to show the protocols
/// also work under stronger orderings and to make traces easy to read.
class FifoDelivery final : public DeliveryPolicy {
 public:
  [[nodiscard]] std::optional<std::size_t> pick(ProcessId receiver,
                                                const Mailbox& mailbox,
                                                std::uint64_t now_step,
                                                Rng& rng) override;
  [[nodiscard]] bool order_preserving() const noexcept override { return true; }
};

/// Always delivers the *most recently sent* buffered message (LIFO). A
/// stress ordering: old messages can languish arbitrarily long, which
/// exercises the protocols' phase-catch-up paths.
class LifoDelivery final : public DeliveryPolicy {
 public:
  [[nodiscard]] std::optional<std::size_t> pick(ProcessId receiver,
                                                const Mailbox& mailbox,
                                                std::uint64_t now_step,
                                                Rng& rng) override;
};

[[nodiscard]] std::unique_ptr<DeliveryPolicy> make_uniform_delivery(
    double phi_probability = 0.0);
[[nodiscard]] std::unique_ptr<DeliveryPolicy> make_fifo_delivery();
[[nodiscard]] std::unique_ptr<DeliveryPolicy> make_lifo_delivery();

}  // namespace rcp::sim
