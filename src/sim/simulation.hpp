// The simulation driver: executes the paper's asynchronous system model.
//
// A Simulation owns n processes, their message buffers, a delivery policy
// (resolving the nondeterministic receive choice) and a scheduler policy
// (resolving the step interleaving). Each step() performs one atomic step:
// pick a process, give it one message or phi, let it compute and send.
//
// Fault injection: crash(p) kills a process between steps (fail-stop: "the
// death of a process occurs without warning messages"); mark_faulty(p)
// excludes a Byzantine process from the termination condition without
// killing it. Crashes can be scheduled by global step or by protocol phase.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "common/process.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "sim/delivery.hpp"
#include "sim/mailbox.hpp"
#include "sim/scheduler.hpp"
#include "sim/trace.hpp"

namespace rcp::sim {

struct SimConfig {
  /// Number of processes; ids are 0..n-1.
  std::uint32_t n = 0;
  /// Master seed; all delivery, scheduling and per-process randomness
  /// derives deterministically from it.
  std::uint64_t seed = 1;
  /// run() gives up after this many atomic steps.
  std::uint64_t max_steps = 5'000'000;
};

enum class RunStatus : std::uint8_t {
  all_decided,  ///< every correct process decided
  quiescent,    ///< no process can take a step (deadlock if undecided remain)
  step_limit,   ///< max_steps exhausted
};

struct RunResult {
  RunStatus status{};
  std::uint64_t steps = 0;
};

/// Aggregate counters for one simulation.
struct Metrics {
  std::uint64_t steps = 0;
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t phi_steps = 0;
  /// Highest phase() observed across correct processes.
  Phase max_phase = 0;
};

class Simulation {
 public:
  /// Takes ownership of the processes (processes.size() must equal cfg.n).
  /// Default policies: UniformDelivery (the paper's probabilistic message
  /// system) and RandomScheduler.
  Simulation(SimConfig cfg, std::vector<std::unique_ptr<Process>> processes,
             std::unique_ptr<DeliveryPolicy> delivery = nullptr,
             std::unique_ptr<SchedulerPolicy> scheduler = nullptr);

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Non-owning; pass nullptr to disable tracing.
  void set_trace(TraceSink* sink) noexcept { trace_ = sink; }

  /// Marks a process as faulty-by-design (Byzantine): it keeps running but
  /// its decisions are ignored and it does not count towards termination.
  void mark_faulty(ProcessId p);

  /// Immediately kills a process (fail-stop). Idempotent.
  void crash(ProcessId p);

  /// Kills `p` just before the first step with global step counter >= step.
  void schedule_crash_at_step(ProcessId p, std::uint64_t step);

  /// Kills `p` as soon as its phase() reaches `phase` (checked after each
  /// of p's steps, i.e. the process dies at the phase boundary).
  void schedule_crash_at_phase(ProcessId p, Phase phase);

  /// Runs start() if needed, then steps until every correct process has
  /// decided, the system is quiescent, or max_steps is reached.
  RunResult run();

  /// Delivers on_start to every live process. Called implicitly by run().
  void start();

  /// One atomic step. Returns false if no process is eligible.
  bool step();

  // ---- Observers ----------------------------------------------------

  [[nodiscard]] std::uint32_t n() const noexcept { return cfg_.n; }
  [[nodiscard]] const Metrics& metrics() const noexcept { return metrics_; }
  [[nodiscard]] bool alive(ProcessId p) const;
  [[nodiscard]] bool is_faulty(ProcessId p) const;
  [[nodiscard]] std::optional<Value> decision_of(ProcessId p) const;
  [[nodiscard]] Phase phase_of(ProcessId p) const;
  [[nodiscard]] std::size_t mailbox_size(ProcessId p) const;

  /// All processes that are neither crashed nor marked faulty.
  [[nodiscard]] std::vector<ProcessId> correct_ids() const;

  /// True if every correct process has decided.
  [[nodiscard]] bool all_correct_decided() const;

  /// True if no two correct processes decided different values (vacuously
  /// true while fewer than two have decided). This is the paper's
  /// *consistency* property, and the main post-condition tests assert.
  [[nodiscard]] bool agreement_holds() const;

  /// The common decision value, if at least one correct process decided
  /// and agreement holds.
  [[nodiscard]] std::optional<Value> agreed_value() const;

  /// Direct access for white-box tests.
  [[nodiscard]] Process& process(ProcessId p);

 private:
  class StepContext;

  void apply_due_step_crashes();
  void maybe_apply_phase_crash(ProcessId p);
  void do_crash(ProcessId p);
  void deliver_send(ProcessId from, ProcessId to, Bytes payload);
  void broadcast_send(ProcessId from, const Bytes& payload);
  void eligible_insert(ProcessId p);
  void eligible_erase(ProcessId p);
  void note_no_longer_counts(ProcessId p);
  void check_incremental_state() const;

  SimConfig cfg_;
  std::vector<std::unique_ptr<Process>> processes_;
  std::unique_ptr<DeliveryPolicy> delivery_;
  std::unique_ptr<SchedulerPolicy> scheduler_;
  std::vector<Mailbox> mailboxes_;
  std::vector<std::optional<Value>> decisions_;
  std::vector<bool> alive_;
  std::vector<bool> faulty_;
  std::vector<Rng> process_rngs_;
  Rng system_rng_;
  std::uint64_t next_seq_ = 0;
  bool started_ = false;
  Metrics metrics_;
  TraceSink* trace_ = nullptr;
  std::multimap<std::uint64_t, ProcessId> step_crashes_;
  std::map<ProcessId, Phase> phase_crashes_;
  /// Processes that are alive with a non-empty mailbox, kept sorted by id.
  /// Maintained incrementally on push/take/crash so step() never rescans
  /// the n mailboxes; the ascending order (and hence the scheduler's RNG
  /// draw sequence) is byte-identical to the old per-step scan.
  std::vector<ProcessId> eligible_;
  /// |{p : !faulty_[p] && !decisions_[p]}|, maintained by decide()/
  /// mark_faulty()/do_crash() so run()'s termination check is O(1).
  std::uint32_t undecided_correct_ = 0;
};

}  // namespace rcp::sim
