// Execution tracing: an optional event sink the simulator reports to.
//
// Used by tests to assert fine-grained protocol behaviour and by examples
// to narrate runs. The default sink discards everything at zero cost.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <vector>

#include "common/types.hpp"

namespace rcp::sim {

enum class EventKind : std::uint8_t {
  start,      ///< process performed its on_start step
  deliver,    ///< a message was removed from a buffer and handled
  phi,        ///< receive() returned the null value
  send,       ///< a message entered a buffer
  decide,     ///< a process recorded its decision
  crash,      ///< a process was killed (fail-stop)
};

struct Event {
  EventKind kind{};
  std::uint64_t step = 0;
  ProcessId process = 0;        ///< acting / receiving process
  ProcessId peer = 0;           ///< sender (deliver) or receiver (send)
  std::uint64_t payload_size = 0;
  std::optional<Value> decision;
};

class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void record(const Event& event) = 0;
};

/// Stores every event in memory (bounded by `capacity`; older events are
/// dropped once full, keeping the most recent window).
class RecordingTrace final : public TraceSink {
 public:
  explicit RecordingTrace(std::size_t capacity = 1 << 20);

  void record(const Event& event) override;

  [[nodiscard]] const std::vector<Event>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }

  /// Number of recorded events of one kind.
  [[nodiscard]] std::size_t count(EventKind kind) const noexcept;

  /// Human-readable dump, one event per line.
  void dump(std::ostream& os) const;

 private:
  std::vector<Event> events_;
  std::size_t capacity_;
  std::size_t next_ = 0;   ///< ring-buffer write cursor once full
  std::uint64_t dropped_ = 0;
};

[[nodiscard]] const char* to_string(EventKind kind) noexcept;

}  // namespace rcp::sim
