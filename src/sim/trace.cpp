#include "sim/trace.hpp"

#include <algorithm>
#include <ostream>

namespace rcp::sim {

const char* to_string(EventKind kind) noexcept {
  switch (kind) {
    case EventKind::start:
      return "start";
    case EventKind::deliver:
      return "deliver";
    case EventKind::phi:
      return "phi";
    case EventKind::send:
      return "send";
    case EventKind::decide:
      return "decide";
    case EventKind::crash:
      return "crash";
  }
  return "?";
}

RecordingTrace::RecordingTrace(std::size_t capacity) : capacity_(capacity) {
  events_.reserve(std::min<std::size_t>(capacity, 4096));
}

void RecordingTrace::record(const Event& event) {
  if (events_.size() < capacity_) {
    events_.push_back(event);
    return;
  }
  // Ring overwrite: keep the most recent `capacity_` events.
  events_[next_] = event;
  next_ = (next_ + 1) % capacity_;
  ++dropped_;
}

std::size_t RecordingTrace::count(EventKind kind) const noexcept {
  return static_cast<std::size_t>(
      std::count_if(events_.begin(), events_.end(),
                    [kind](const Event& e) { return e.kind == kind; }));
}

void RecordingTrace::dump(std::ostream& os) const {
  for (const Event& e : events_) {
    os << '[' << e.step << "] p" << e.process << ' ' << to_string(e.kind);
    switch (e.kind) {
      case EventKind::deliver:
        os << " from p" << e.peer << " (" << e.payload_size << "B)";
        break;
      case EventKind::send:
        os << " to p" << e.peer << " (" << e.payload_size << "B)";
        break;
      case EventKind::decide:
        if (e.decision) {
          os << " value " << *e.decision;
        }
        break;
      default:
        break;
    }
    os << '\n';
  }
  if (dropped_ > 0) {
    os << "(" << dropped_ << " earlier events dropped)\n";
  }
}

}  // namespace rcp::sim
