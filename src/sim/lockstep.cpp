#include "sim/lockstep.hpp"

#include "common/error.hpp"

namespace rcp::sim {

LockstepSimulation::LockstepSimulation(
    std::vector<std::unique_ptr<LockstepProcess>> processes,
    std::vector<bool> dead)
    : processes_(std::move(processes)), dead_(std::move(dead)) {
  RCP_EXPECT(!processes_.empty(), "lockstep needs at least one process");
  RCP_EXPECT(dead_.size() == processes_.size(), "dead mask size mismatch");
  for (const auto& p : processes_) {
    RCP_EXPECT(p != nullptr, "null process");
  }
}

void LockstepSimulation::run_round() {
  std::vector<std::pair<ProcessId, Bytes>> messages;
  messages.reserve(processes_.size());
  for (ProcessId p = 0; p < processes_.size(); ++p) {
    if (!dead_[p]) {
      messages.emplace_back(p, processes_[p]->broadcast_for_round(round_));
    }
  }
  for (ProcessId p = 0; p < processes_.size(); ++p) {
    if (!dead_[p]) {
      processes_[p]->receive_round(round_, messages);
    }
  }
  ++round_;
}

std::uint32_t LockstepSimulation::run_until_decided(std::uint32_t max_rounds) {
  while (!all_live_decided() && round_ < max_rounds) {
    run_round();
  }
  return round_;
}

bool LockstepSimulation::dead(ProcessId p) const {
  RCP_EXPECT(p < processes_.size(), "unknown process");
  return dead_[p];
}

std::optional<Value> LockstepSimulation::decision_of(ProcessId p) const {
  RCP_EXPECT(p < processes_.size(), "unknown process");
  return processes_[p]->decision();
}

bool LockstepSimulation::all_live_decided() const {
  for (ProcessId p = 0; p < processes_.size(); ++p) {
    if (!dead_[p] && !processes_[p]->decision().has_value()) {
      return false;
    }
  }
  return true;
}

bool LockstepSimulation::agreement_holds() const {
  std::optional<Value> seen;
  for (ProcessId p = 0; p < processes_.size(); ++p) {
    if (dead_[p]) {
      continue;
    }
    const auto d = processes_[p]->decision();
    if (!d.has_value()) {
      continue;
    }
    if (seen.has_value() && *seen != *d) {
      return false;
    }
    seen = d;
  }
  return true;
}

}  // namespace rcp::sim
