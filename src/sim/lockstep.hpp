// A synchronous (lock-step) round substrate.
//
// Section 5 of the paper claims that, under its weak interpretation of
// bivalence, consensus can tolerate *any* number of initially-dead
// processes, via the G+ (transitive closure) construction of [Fisc83]'s
// footnote. The paper gives no full asynchronous construction; we realise
// the claim in the standard synchronous-round model, where an
// initially-dead process is simply one whose messages never appear in any
// round. DESIGN.md records this substitution.
//
// Each round, every live process emits one broadcast payload; at the round
// boundary every live process receives the full set of (sender, payload)
// pairs for that round. This is deterministic apart from which processes
// are dead.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/process.hpp"
#include "common/types.hpp"

namespace rcp::sim {

// The LockstepProcess participant interface lives in common/process.hpp
// (sans-io, below the protocol cores); this header provides the round
// substrate that drives it.

class LockstepSimulation {
 public:
  /// dead[p] marks process p as initially dead (it never broadcasts and
  /// never receives).
  LockstepSimulation(std::vector<std::unique_ptr<LockstepProcess>> processes,
                     std::vector<bool> dead);

  /// Runs one full round (broadcast + synchronized delivery).
  void run_round();

  /// Runs rounds until every live process has decided or `max_rounds`
  /// elapsed. Returns the number of rounds executed.
  std::uint32_t run_until_decided(std::uint32_t max_rounds);

  [[nodiscard]] std::uint32_t n() const noexcept {
    return static_cast<std::uint32_t>(processes_.size());
  }
  [[nodiscard]] bool dead(ProcessId p) const;
  [[nodiscard]] std::optional<Value> decision_of(ProcessId p) const;
  [[nodiscard]] bool all_live_decided() const;
  /// True if no two live processes decided different values.
  [[nodiscard]] bool agreement_holds() const;
  [[nodiscard]] std::uint32_t rounds_run() const noexcept { return round_; }

 private:
  std::vector<std::unique_ptr<LockstepProcess>> processes_;
  std::vector<bool> dead_;
  std::uint32_t round_ = 0;
};

}  // namespace rcp::sim
