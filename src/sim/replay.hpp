// Schedule capture and deterministic replay.
//
// A consensus bug usually lives in one adversarial interleaving; once a
// randomized search finds it, you want to replay *exactly* that execution
// under a debugger or after a code change. A Schedule records, for every
// atomic step, which process acted and which buffered message (by global
// sequence number) its receive() returned; Recording{Scheduler,Delivery}
// capture it from a live run, Replay{Scheduler,Delivery} re-drive a fresh
// simulation through the identical interleaving.
//
// Replay is exact as long as the protocol code is deterministic given the
// delivered messages (all rcp protocols are; Ben-Or additionally needs the
// same per-process RNG seed, which SimConfig::seed pins).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <optional>
#include <vector>

#include "sim/delivery.hpp"
#include "sim/scheduler.hpp"

namespace rcp::sim {

/// One atomic step: which process acted, and which message (by envelope
/// seq) it received — nullopt for a phi step.
struct ScheduleStep {
  ProcessId actor = 0;
  std::optional<std::uint64_t> seq;
};

class Schedule {
 public:
  void append_actor(ProcessId actor) { steps_.push_back({actor, {}}); }
  void set_last_choice(std::optional<std::uint64_t> seq);

  [[nodiscard]] const std::vector<ScheduleStep>& steps() const noexcept {
    return steps_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return steps_.size(); }

  /// Text form: one "actor seq" (or "actor phi") pair per line.
  void save(std::ostream& os) const;
  [[nodiscard]] static Schedule load(std::istream& is);

 private:
  std::vector<ScheduleStep> steps_;
};

/// Shared replay cursor (scheduler consumes the actor, delivery the seq).
class ReplayCursor {
 public:
  explicit ReplayCursor(Schedule schedule) : schedule_(std::move(schedule)) {}

  [[nodiscard]] const Schedule& schedule() const noexcept { return schedule_; }
  [[nodiscard]] bool exhausted() const noexcept {
    return next_ >= schedule_.steps().size();
  }
  [[nodiscard]] const ScheduleStep& current() const;
  void advance() { ++next_; }

 private:
  Schedule schedule_;
  std::size_t next_ = 0;
};

// ---- Recording -----------------------------------------------------------

/// Wraps a scheduler, appending each chosen actor to the schedule.
class RecordingScheduler final : public SchedulerPolicy {
 public:
  RecordingScheduler(std::unique_ptr<SchedulerPolicy> inner,
                     std::shared_ptr<Schedule> out);

  [[nodiscard]] ProcessId pick(std::span<const ProcessId> eligible,
                               Rng& rng) override;

 private:
  std::unique_ptr<SchedulerPolicy> inner_;
  std::shared_ptr<Schedule> out_;
};

/// Wraps a delivery policy, recording the seq of each delivered message.
class RecordingDelivery final : public DeliveryPolicy {
 public:
  RecordingDelivery(std::unique_ptr<DeliveryPolicy> inner,
                    std::shared_ptr<Schedule> out);

  [[nodiscard]] std::optional<std::size_t> pick(ProcessId receiver,
                                                const Mailbox& mailbox,
                                                std::uint64_t now_step,
                                                Rng& rng) override;
  [[nodiscard]] bool order_preserving() const noexcept override;

 private:
  std::unique_ptr<DeliveryPolicy> inner_;
  std::shared_ptr<Schedule> out_;
};

// ---- Replaying ------------------------------------------------------------

/// Forces the recorded actor each step. Throws InvariantError if the
/// recorded actor is not currently eligible (i.e. the run diverged).
class ReplayScheduler final : public SchedulerPolicy {
 public:
  explicit ReplayScheduler(std::shared_ptr<ReplayCursor> cursor);

  [[nodiscard]] ProcessId pick(std::span<const ProcessId> eligible,
                               Rng& rng) override;

 private:
  std::shared_ptr<ReplayCursor> cursor_;
};

/// Forces the recorded message (by seq) each step. Throws InvariantError if
/// the recorded seq is not in the mailbox (the run diverged).
class ReplayDelivery final : public DeliveryPolicy {
 public:
  explicit ReplayDelivery(std::shared_ptr<ReplayCursor> cursor);

  [[nodiscard]] std::optional<std::size_t> pick(ProcessId receiver,
                                                const Mailbox& mailbox,
                                                std::uint64_t now_step,
                                                Rng& rng) override;

 private:
  std::shared_ptr<ReplayCursor> cursor_;
};

/// Convenience: (recording scheduler, recording delivery, schedule handle).
struct RecordingPolicies {
  std::unique_ptr<SchedulerPolicy> scheduler;
  std::unique_ptr<DeliveryPolicy> delivery;
  std::shared_ptr<Schedule> schedule;
};

/// Wraps the given (or default uniform/random) policies for capture.
[[nodiscard]] RecordingPolicies make_recording_policies(
    std::unique_ptr<DeliveryPolicy> delivery = nullptr,
    std::unique_ptr<SchedulerPolicy> scheduler = nullptr);

/// Builds the pair of replay policies driving a fresh simulation through
/// `schedule`.
struct ReplayPolicies {
  std::unique_ptr<SchedulerPolicy> scheduler;
  std::unique_ptr<DeliveryPolicy> delivery;
  std::shared_ptr<ReplayCursor> cursor;
};

[[nodiscard]] ReplayPolicies make_replay_policies(Schedule schedule);

}  // namespace rcp::sim
