#include "sim/mailbox.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"

namespace rcp::sim {

Envelope& Mailbox::emplace() {
  if (head_ > 0 && messages_.size() == messages_.capacity()) {
    // Recycle the consumed prefix instead of growing: slide the live
    // region to the front. Steady-state mailboxes stop allocating here.
    std::move(messages_.begin() + static_cast<std::ptrdiff_t>(head_),
              messages_.end(), messages_.begin());
    // rcp-lint: allow(hot-alloc) shrinking resize recycles in place; no growth
    messages_.resize(messages_.size() - head_);
    head_ = 0;
  }
  // rcp-lint: allow(hot-alloc) ring growth until steady state (allocation_test)
  return messages_.emplace_back();
}

Envelope Mailbox::take(std::size_t index) {
  RCP_EXPECT(index < size(), "mailbox take out of range");
  const std::size_t at = head_ + index;
  Envelope env = std::move(messages_[at]);
  if (at + 1 != messages_.size()) {
    messages_[at] = std::move(messages_.back());
  }
  messages_.pop_back();
  if (head_ == messages_.size()) {
    clear();
  }
  return env;
}

Envelope Mailbox::take_front_preserving(std::size_t index) {
  RCP_EXPECT(index < size(), "mailbox take out of range");
  const std::size_t at = head_ + index;
  Envelope env = std::move(messages_[at]);
  // Shift the (short) prefix right by one and advance the head, rather
  // than shifting the whole suffix left as erase() would.
  std::move_backward(messages_.begin() + static_cast<std::ptrdiff_t>(head_),
                     messages_.begin() + static_cast<std::ptrdiff_t>(at),
                     messages_.begin() + static_cast<std::ptrdiff_t>(at + 1));
  ++head_;
  if (head_ == messages_.size()) {
    clear();
  }
  return env;
}

}  // namespace rcp::sim
