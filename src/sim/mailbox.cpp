#include "sim/mailbox.hpp"

#include <utility>

#include "common/error.hpp"

namespace rcp::sim {

Envelope Mailbox::take(std::size_t index) {
  RCP_EXPECT(index < messages_.size(), "mailbox take out of range");
  std::swap(messages_[index], messages_.back());
  Envelope env = std::move(messages_.back());
  messages_.pop_back();
  return env;
}

Envelope Mailbox::take_front_preserving(std::size_t index) {
  RCP_EXPECT(index < messages_.size(), "mailbox take out of range");
  Envelope env = std::move(messages_[index]);
  messages_.erase(messages_.begin() + static_cast<std::ptrdiff_t>(index));
  return env;
}

}  // namespace rcp::sim
