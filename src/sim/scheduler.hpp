// Scheduler policies: which process performs the next atomic step.
//
// The paper's executions are arbitrary interleavings of atomic steps; the
// convergence assumption only constrains *message* nondeterminism, so any
// fair scheduler suffices for the probability-1 termination results.
// RandomScheduler draws uniformly (fair); RoundRobinScheduler is the
// deterministic fair baseline; adversarial schedulers live in src/adversary.
#pragma once

#include <cstdint>
#include <memory>
#include <span>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace rcp::sim {

class SchedulerPolicy {
 public:
  virtual ~SchedulerPolicy() = default;

  /// Picks the next process to step from `eligible` (non-empty, sorted by
  /// id). Returns one of its elements.
  [[nodiscard]] virtual ProcessId pick(std::span<const ProcessId> eligible,
                                       Rng& rng) = 0;
};

/// Uniform random choice among eligible processes.
class RandomScheduler final : public SchedulerPolicy {
 public:
  [[nodiscard]] ProcessId pick(std::span<const ProcessId> eligible,
                               Rng& rng) override;
};

/// Cycles through process ids, skipping ineligible ones.
class RoundRobinScheduler final : public SchedulerPolicy {
 public:
  [[nodiscard]] ProcessId pick(std::span<const ProcessId> eligible,
                               Rng& rng) override;

 private:
  ProcessId last_ = 0;
  bool started_ = false;
};

[[nodiscard]] std::unique_ptr<SchedulerPolicy> make_random_scheduler();
[[nodiscard]] std::unique_ptr<SchedulerPolicy> make_round_robin_scheduler();

}  // namespace rcp::sim
