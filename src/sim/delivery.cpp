#include "sim/delivery.hpp"

#include "common/error.hpp"

namespace rcp::sim {

UniformDelivery::UniformDelivery(double phi_probability)
    : phi_probability_(phi_probability) {
  RCP_EXPECT(phi_probability >= 0.0 && phi_probability < 1.0,
             "phi probability must lie in [0, 1)");
}

std::optional<std::size_t> UniformDelivery::pick(ProcessId /*receiver*/,
                                                 const Mailbox& mailbox,
                                                 std::uint64_t /*now_step*/,
                                                 Rng& rng) {
  if (mailbox.empty()) {
    return std::nullopt;
  }
  if (phi_probability_ > 0.0 && rng.bernoulli(phi_probability_)) {
    return std::nullopt;
  }
  return static_cast<std::size_t>(rng.below(mailbox.size()));
}

std::optional<std::size_t> FifoDelivery::pick(ProcessId /*receiver*/,
                                              const Mailbox& mailbox,
                                              std::uint64_t /*now_step*/,
                                              Rng& /*rng*/) {
  if (mailbox.empty()) {
    return std::nullopt;
  }
  // Arrival order is the container order for order-preserving policies.
  std::size_t oldest = 0;
  std::uint64_t oldest_seq = mailbox.contents()[0].seq;
  for (std::size_t i = 1; i < mailbox.size(); ++i) {
    if (mailbox.contents()[i].seq < oldest_seq) {
      oldest_seq = mailbox.contents()[i].seq;
      oldest = i;
    }
  }
  return oldest;
}

std::optional<std::size_t> LifoDelivery::pick(ProcessId /*receiver*/,
                                              const Mailbox& mailbox,
                                              std::uint64_t /*now_step*/,
                                              Rng& /*rng*/) {
  if (mailbox.empty()) {
    return std::nullopt;
  }
  std::size_t newest = 0;
  std::uint64_t newest_seq = mailbox.contents()[0].seq;
  for (std::size_t i = 1; i < mailbox.size(); ++i) {
    if (mailbox.contents()[i].seq > newest_seq) {
      newest_seq = mailbox.contents()[i].seq;
      newest = i;
    }
  }
  return newest;
}

std::unique_ptr<DeliveryPolicy> make_uniform_delivery(double phi_probability) {
  // rcp-lint: allow(hot-alloc) one-time policy construction
  return std::make_unique<UniformDelivery>(phi_probability);
}

std::unique_ptr<DeliveryPolicy> make_fifo_delivery() {
  // rcp-lint: allow(hot-alloc) one-time policy construction
  return std::make_unique<FifoDelivery>();
}

std::unique_ptr<DeliveryPolicy> make_lifo_delivery() {
  // rcp-lint: allow(hot-alloc) one-time policy construction
  return std::make_unique<LifoDelivery>();
}

}  // namespace rcp::sim
