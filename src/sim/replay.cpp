#include "sim/replay.hpp"

#include <algorithm>
#include <istream>
#include <ostream>
#include <string>

#include "common/error.hpp"

namespace rcp::sim {

void Schedule::set_last_choice(std::optional<std::uint64_t> seq) {
  RCP_EXPECT(!steps_.empty(), "no step to attach a delivery choice to");
  steps_.back().seq = seq;
}

void Schedule::save(std::ostream& os) const {
  for (const ScheduleStep& s : steps_) {
    os << s.actor << ' ';
    if (s.seq.has_value()) {
      os << *s.seq;
    } else {
      os << "phi";
    }
    os << '\n';
  }
}

Schedule Schedule::load(std::istream& is) {
  Schedule schedule;
  ProcessId actor = 0;
  std::string token;
  while (is >> actor >> token) {
    schedule.append_actor(actor);
    if (token != "phi") {
      schedule.set_last_choice(std::stoull(token));
    }
  }
  return schedule;
}

const ScheduleStep& ReplayCursor::current() const {
  RCP_EXPECT(!exhausted(), "replay schedule exhausted");
  return schedule_.steps()[next_];
}

// ---- Recording -------------------------------------------------------------

RecordingScheduler::RecordingScheduler(std::unique_ptr<SchedulerPolicy> inner,
                                       std::shared_ptr<Schedule> out)
    : inner_(std::move(inner)), out_(std::move(out)) {
  RCP_EXPECT(inner_ != nullptr && out_ != nullptr,
             "recording scheduler needs an inner policy and a sink");
}

ProcessId RecordingScheduler::pick(std::span<const ProcessId> eligible,
                                   Rng& rng) {
  const ProcessId actor = inner_->pick(eligible, rng);
  out_->append_actor(actor);
  return actor;
}

RecordingDelivery::RecordingDelivery(std::unique_ptr<DeliveryPolicy> inner,
                                     std::shared_ptr<Schedule> out)
    : inner_(std::move(inner)), out_(std::move(out)) {
  RCP_EXPECT(inner_ != nullptr && out_ != nullptr,
             "recording delivery needs an inner policy and a sink");
}

std::optional<std::size_t> RecordingDelivery::pick(ProcessId receiver,
                                                   const Mailbox& mailbox,
                                                   std::uint64_t now_step,
                                                   Rng& rng) {
  const auto choice = inner_->pick(receiver, mailbox, now_step, rng);
  if (choice.has_value()) {
    out_->set_last_choice(mailbox.contents()[*choice].seq);
  } else {
    out_->set_last_choice(std::nullopt);
  }
  return choice;
}

bool RecordingDelivery::order_preserving() const noexcept {
  return inner_->order_preserving();
}

// ---- Replaying --------------------------------------------------------------

ReplayScheduler::ReplayScheduler(std::shared_ptr<ReplayCursor> cursor)
    : cursor_(std::move(cursor)) {
  RCP_EXPECT(cursor_ != nullptr, "replay scheduler needs a cursor");
}

ProcessId ReplayScheduler::pick(std::span<const ProcessId> eligible,
                                Rng& /*rng*/) {
  const ScheduleStep& step = cursor_->current();
  const bool is_eligible =
      std::find(eligible.begin(), eligible.end(), step.actor) != eligible.end();
  RCP_INVARIANT(is_eligible,
                "replay diverged: recorded actor is no longer eligible");
  return step.actor;
}

ReplayDelivery::ReplayDelivery(std::shared_ptr<ReplayCursor> cursor)
    : cursor_(std::move(cursor)) {
  RCP_EXPECT(cursor_ != nullptr, "replay delivery needs a cursor");
}

std::optional<std::size_t> ReplayDelivery::pick(ProcessId /*receiver*/,
                                                const Mailbox& mailbox,
                                                std::uint64_t /*now_step*/,
                                                Rng& /*rng*/) {
  const ScheduleStep step = cursor_->current();
  cursor_->advance();  // one schedule entry per atomic step
  if (!step.seq.has_value()) {
    return std::nullopt;
  }
  for (std::size_t i = 0; i < mailbox.size(); ++i) {
    if (mailbox.contents()[i].seq == *step.seq) {
      return i;
    }
  }
  RCP_INVARIANT(false, "replay diverged: recorded message not in mailbox");
}

RecordingPolicies make_recording_policies(
    std::unique_ptr<DeliveryPolicy> delivery,
    std::unique_ptr<SchedulerPolicy> scheduler) {
  auto schedule = std::make_shared<Schedule>();
  if (!delivery) {
    delivery = make_uniform_delivery();
  }
  if (!scheduler) {
    scheduler = make_random_scheduler();
  }
  return RecordingPolicies{
      .scheduler = std::make_unique<RecordingScheduler>(std::move(scheduler),
                                                        schedule),
      .delivery =
          std::make_unique<RecordingDelivery>(std::move(delivery), schedule),
      .schedule = schedule,
  };
}

ReplayPolicies make_replay_policies(Schedule schedule) {
  auto cursor = std::make_shared<ReplayCursor>(std::move(schedule));
  return ReplayPolicies{
      .scheduler = std::make_unique<ReplayScheduler>(cursor),
      .delivery = std::make_unique<ReplayDelivery>(cursor),
      .cursor = cursor,
  };
}

}  // namespace rcp::sim
