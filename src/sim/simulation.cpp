#include "sim/simulation.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"

namespace rcp::sim {

// Context implementation bound to one (simulation, acting process) pair for
// the duration of a single atomic step.
class Simulation::StepContext final : public Context {
 public:
  StepContext(Simulation& sim, ProcessId self) noexcept
      : sim_(sim), self_(self) {}

  [[nodiscard]] ProcessId self() const noexcept override { return self_; }
  [[nodiscard]] std::uint32_t n() const noexcept override {
    return sim_.cfg_.n;
  }
  [[nodiscard]] std::uint64_t step() const noexcept override {
    return sim_.metrics_.steps;
  }

  void send(ProcessId to, Bytes payload) override {
    RCP_EXPECT(to < sim_.cfg_.n, "send to unknown process");
    sim_.deliver_send(self_, to, std::move(payload));
  }

  void broadcast(const Bytes& payload) override {
    sim_.broadcast_send(self_, payload);
  }

  void decide(Value v) override {
    auto& slot = sim_.decisions_[self_];
    if (slot.has_value()) {
      RCP_INVARIANT(*slot == v,
                    "process attempted to change its one-shot decision");
      return;
    }
    slot = v;
    if (!sim_.faulty_[self_]) {
      --sim_.undecided_correct_;
    }
    if (sim_.trace_ != nullptr) {
      sim_.trace_->record(Event{.kind = EventKind::decide,
                                .step = sim_.metrics_.steps,
                                .process = self_,
                                .peer = self_,
                                .payload_size = 0,
                                .decision = v});
    }
  }

  [[nodiscard]] Rng& rng() noexcept override {
    return sim_.process_rngs_[self_];
  }

 private:
  Simulation& sim_;
  ProcessId self_;
};

Simulation::Simulation(SimConfig cfg,
                       std::vector<std::unique_ptr<Process>> processes,
                       std::unique_ptr<DeliveryPolicy> delivery,
                       std::unique_ptr<SchedulerPolicy> scheduler)
    : cfg_(cfg),
      processes_(std::move(processes)),
      delivery_(delivery ? std::move(delivery) : make_uniform_delivery()),
      scheduler_(scheduler ? std::move(scheduler) : make_random_scheduler()),
      system_rng_(cfg.seed) {
  RCP_EXPECT(cfg_.n > 0, "simulation needs at least one process");
  RCP_EXPECT(processes_.size() == cfg_.n,
             "process count must match SimConfig::n");
  for (const auto& p : processes_) {
    RCP_EXPECT(p != nullptr, "null process");
  }
  // One-time construction of per-process state; the allocation contract
  // (tests/sim/allocation_test.cpp) starts at the first step. Every
  // container is sized for n here so the hot path never grows one.
  mailboxes_.resize(cfg_.n);      // rcp-lint: allow(hot-alloc) ctor setup
  decisions_.resize(cfg_.n);      // rcp-lint: allow(hot-alloc) ctor setup
  alive_.assign(cfg_.n, true);    // rcp-lint: allow(hot-alloc) ctor setup
  faulty_.assign(cfg_.n, false);  // rcp-lint: allow(hot-alloc) ctor setup
  process_rngs_.reserve(cfg_.n);  // rcp-lint: allow(hot-alloc) ctor setup
  for (ProcessId p = 0; p < cfg_.n; ++p) {
    // rcp-lint: allow(hot-alloc) ctor setup
    process_rngs_.push_back(system_rng_.split());
  }
  eligible_.reserve(cfg_.n);      // rcp-lint: allow(hot-alloc) ctor setup
  undecided_correct_ = cfg_.n;
}

void Simulation::mark_faulty(ProcessId p) {
  RCP_EXPECT(p < cfg_.n, "unknown process");
  note_no_longer_counts(p);
  faulty_[p] = true;
}

/// Bookkeeping for the O(1) termination check: `p` is about to stop
/// counting towards the undecided-correct total (marked faulty/crashed).
void Simulation::note_no_longer_counts(ProcessId p) {
  if (!faulty_[p] && !decisions_[p].has_value()) {
    --undecided_correct_;
  }
}

void Simulation::eligible_insert(ProcessId p) {
  // rcp-lint: allow(hot-alloc) insert into capacity-n vector; never grows
  eligible_.insert(std::lower_bound(eligible_.begin(), eligible_.end(), p), p);
}

void Simulation::eligible_erase(ProcessId p) {
  const auto it = std::lower_bound(eligible_.begin(), eligible_.end(), p);
  if (it != eligible_.end() && *it == p) {
    eligible_.erase(it);
  }
}

/// Debug cross-check: the incrementally-maintained eligible set and
/// undecided-correct counter must equal what a full rescan would produce.
void Simulation::check_incremental_state() const {
#ifndef NDEBUG
  std::vector<ProcessId> scan;
  std::uint32_t undecided = 0;
  for (ProcessId p = 0; p < cfg_.n; ++p) {
    if (alive_[p] && !mailboxes_[p].empty()) {
      // rcp-lint: allow(hot-alloc) debug-only rescan cross-check
      scan.push_back(p);
    }
    if (!faulty_[p] && !decisions_[p].has_value()) {
      ++undecided;
    }
  }
  RCP_INVARIANT(scan == eligible_, "incremental eligible set diverged");
  RCP_INVARIANT(undecided == undecided_correct_,
                "undecided-correct counter diverged");
#endif
}

void Simulation::crash(ProcessId p) {
  RCP_EXPECT(p < cfg_.n, "unknown process");
  do_crash(p);
}

void Simulation::do_crash(ProcessId p) {
  if (!alive_[p]) {
    return;
  }
  note_no_longer_counts(p);
  alive_[p] = false;
  faulty_[p] = true;
  eligible_erase(p);
  if (trace_ != nullptr) {
    trace_->record(Event{.kind = EventKind::crash,
                         .step = metrics_.steps,
                         .process = p,
                         .peer = p,
                         .payload_size = 0,
                         .decision = std::nullopt});
  }
}

void Simulation::schedule_crash_at_step(ProcessId p, std::uint64_t step) {
  RCP_EXPECT(p < cfg_.n, "unknown process");
  // rcp-lint: allow(hot-alloc) fault-injection setup, not the step path
  step_crashes_.emplace(step, p);
}

void Simulation::schedule_crash_at_phase(ProcessId p, Phase phase) {
  RCP_EXPECT(p < cfg_.n, "unknown process");
  phase_crashes_[p] = phase;
}

void Simulation::apply_due_step_crashes() {
  while (!step_crashes_.empty() &&
         step_crashes_.begin()->first <= metrics_.steps) {
    const ProcessId victim = step_crashes_.begin()->second;
    step_crashes_.erase(step_crashes_.begin());
    do_crash(victim);
  }
}

void Simulation::maybe_apply_phase_crash(ProcessId p) {
  const auto it = phase_crashes_.find(p);
  if (it != phase_crashes_.end() && processes_[p]->phase() >= it->second) {
    phase_crashes_.erase(it);
    do_crash(p);
  }
}

void Simulation::deliver_send(ProcessId from, ProcessId to, Bytes payload) {
  ++metrics_.messages_sent;
  if (trace_ != nullptr) {
    trace_->record(Event{.kind = EventKind::send,
                         .step = metrics_.steps,
                         .process = from,
                         .peer = to,
                         .payload_size = payload.size(),
                         .decision = std::nullopt});
  }
  Mailbox& box = mailboxes_[to];
  const bool was_empty = box.empty();
  // rcp-lint: allow(hot-alloc) Mailbox ring recycles; steady-state alloc-free
  Envelope& slot = box.emplace();
  slot.sender = from;
  slot.receiver = to;
  slot.payload = std::move(payload);
  slot.sent_at_step = metrics_.steps;
  slot.seq = next_seq_++;
  if (was_empty && alive_[to]) {
    eligible_insert(to);
  }
}

/// One encoded payload fanned out to all n mailboxes by cheap Payload copy
/// (inline memcpy, or a refcount bump for heap spills). Equivalent to n
/// deliver_send() calls — same per-destination trace events, counters and
/// sequence numbers — but with the loop-invariant state hoisted out of the
/// per-destination work.
void Simulation::broadcast_send(ProcessId from, const Bytes& payload) {
  const std::uint64_t now = metrics_.steps;
  const std::size_t len = payload.size();
  std::uint64_t seq = next_seq_;
  TraceSink* const trace = trace_;
  const std::uint32_t n = cfg_.n;
  for (ProcessId to = 0; to < n; ++to) {
    if (trace != nullptr) {
      trace->record(Event{.kind = EventKind::send,
                          .step = now,
                          .process = from,
                          .peer = to,
                          .payload_size = len,
                          .decision = std::nullopt});
    }
    Mailbox& box = mailboxes_[to];
    const bool was_empty = box.empty();
    // rcp-lint: allow(hot-alloc) Mailbox ring recycles; steady-state alloc-free
    Envelope& slot = box.emplace();
    slot.sender = from;
    slot.receiver = to;
    slot.payload = payload;
    slot.sent_at_step = now;
    slot.seq = seq++;
    if (was_empty && alive_[to]) {
      eligible_insert(to);
    }
  }
  next_seq_ = seq;
  metrics_.messages_sent += n;
}

void Simulation::start() {
  RCP_EXPECT(!started_, "start() called twice");
  started_ = true;
  apply_due_step_crashes();
  for (ProcessId p = 0; p < cfg_.n; ++p) {
    if (!alive_[p]) {
      continue;  // initially-dead processes never take their start step
    }
    StepContext ctx(*this, p);
    processes_[p]->on_start(ctx);
    if (trace_ != nullptr) {
      trace_->record(Event{.kind = EventKind::start,
                           .step = metrics_.steps,
                           .process = p,
                           .peer = p,
                           .payload_size = 0,
                           .decision = std::nullopt});
    }
    maybe_apply_phase_crash(p);
  }
}

bool Simulation::step() {
  if (!started_) {
    start();
  }
  apply_due_step_crashes();
  check_incremental_state();
  if (eligible_.empty()) {
    return false;
  }
  const ProcessId p = scheduler_->pick(eligible_, system_rng_);
  RCP_INVARIANT(p < cfg_.n && alive_[p], "scheduler picked invalid process");
  ++metrics_.steps;

  Mailbox& box = mailboxes_[p];
  const std::optional<std::size_t> choice =
      delivery_->pick(p, box, metrics_.steps, system_rng_);
  StepContext ctx(*this, p);
  if (!choice.has_value()) {
    ++metrics_.phi_steps;
    if (trace_ != nullptr) {
      trace_->record(Event{.kind = EventKind::phi,
                           .step = metrics_.steps,
                           .process = p,
                           .peer = p,
                           .payload_size = 0,
                           .decision = std::nullopt});
    }
    processes_[p]->on_null(ctx);
  } else {
    const Envelope env = delivery_->order_preserving()
                             ? box.take_front_preserving(*choice)
                             : box.take(*choice);
    if (box.empty()) {
      eligible_erase(p);  // before on_message: a self-send must re-insert
    }
    ++metrics_.messages_delivered;
    if (trace_ != nullptr) {
      trace_->record(Event{.kind = EventKind::deliver,
                           .step = metrics_.steps,
                           .process = p,
                           .peer = env.sender,
                           .payload_size = env.payload.size(),
                           .decision = std::nullopt});
    }
    processes_[p]->on_message(ctx, env);
  }
  if (!faulty_[p]) {
    metrics_.max_phase = std::max(metrics_.max_phase, processes_[p]->phase());
  }
  maybe_apply_phase_crash(p);
  return true;
}

RunResult Simulation::run() {
  if (!started_) {
    start();
  }
  while (metrics_.steps < cfg_.max_steps) {
    if (all_correct_decided()) {
      return RunResult{RunStatus::all_decided, metrics_.steps};
    }
    if (!step()) {
      return RunResult{RunStatus::quiescent, metrics_.steps};
    }
  }
  return RunResult{all_correct_decided() ? RunStatus::all_decided
                                         : RunStatus::step_limit,
                   metrics_.steps};
}

bool Simulation::alive(ProcessId p) const {
  RCP_EXPECT(p < cfg_.n, "unknown process");
  return alive_[p];
}

bool Simulation::is_faulty(ProcessId p) const {
  RCP_EXPECT(p < cfg_.n, "unknown process");
  return faulty_[p];
}

std::optional<Value> Simulation::decision_of(ProcessId p) const {
  RCP_EXPECT(p < cfg_.n, "unknown process");
  return decisions_[p];
}

Phase Simulation::phase_of(ProcessId p) const {
  RCP_EXPECT(p < cfg_.n, "unknown process");
  return processes_[p]->phase();
}

std::size_t Simulation::mailbox_size(ProcessId p) const {
  RCP_EXPECT(p < cfg_.n, "unknown process");
  return mailboxes_[p].size();
}

std::vector<ProcessId> Simulation::correct_ids() const {
  std::vector<ProcessId> out;
  // rcp-lint: allow(hot-alloc) post-run reporting helper
  out.reserve(cfg_.n);
  for (ProcessId p = 0; p < cfg_.n; ++p) {
    if (!faulty_[p]) {
      // rcp-lint: allow(hot-alloc) post-run reporting helper
      out.push_back(p);
    }
  }
  return out;
}

bool Simulation::all_correct_decided() const {
#ifndef NDEBUG
  std::uint32_t undecided = 0;
  for (ProcessId p = 0; p < cfg_.n; ++p) {
    if (!faulty_[p] && !decisions_[p].has_value()) {
      ++undecided;
    }
  }
  RCP_INVARIANT(undecided == undecided_correct_,
                "undecided-correct counter diverged");
#endif
  return undecided_correct_ == 0;
}

bool Simulation::agreement_holds() const {
  std::optional<Value> seen;
  for (ProcessId p = 0; p < cfg_.n; ++p) {
    if (faulty_[p] || !decisions_[p].has_value()) {
      continue;
    }
    if (seen.has_value() && *seen != *decisions_[p]) {
      return false;
    }
    seen = decisions_[p];
  }
  return true;
}

std::optional<Value> Simulation::agreed_value() const {
  if (!agreement_holds()) {
    return std::nullopt;
  }
  for (ProcessId p = 0; p < cfg_.n; ++p) {
    if (!faulty_[p] && decisions_[p].has_value()) {
      return decisions_[p];
    }
  }
  return std::nullopt;
}

Process& Simulation::process(ProcessId p) {
  RCP_EXPECT(p < cfg_.n, "unknown process");
  return *processes_[p];
}

}  // namespace rcp::sim
