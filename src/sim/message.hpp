// Message envelopes carried by the simulated asynchronous message system.
#pragma once

#include <cstdint>

#include "common/bytes.hpp"
#include "common/types.hpp"

namespace rcp::sim {

/// One in-flight message. The simulator stamps the true `sender`, which
/// gives the authenticated-identity guarantee the paper's malicious model
/// requires ("the message system must provide a way for correct processes to
/// verify the identity of the sender of each message"): Byzantine processes
/// may lie inside `payload` but cannot forge `sender`.
struct Envelope {
  ProcessId sender = 0;
  ProcessId receiver = 0;
  Bytes payload;
  /// Global step at which the message was sent (for traces/adversaries).
  std::uint64_t sent_at_step = 0;
  /// Monotone sequence number unique across the whole simulation; makes
  /// delivery order independent of container iteration details.
  std::uint64_t seq = 0;
};

}  // namespace rcp::sim
