// Per-process message buffer.
//
// The paper's message system "maintains for each process a message buffer of
// messages sent to it but not yet received"; receive() removes *some*
// message nondeterministically. The Mailbox supports O(1) removal at an
// arbitrary index so delivery policies can realise any nondeterministic
// choice.
//
// Storage is a recycling ring over one vector: a head offset marks consumed
// slots, so order-preserving removal shifts the (usually empty) prefix
// before the chosen index instead of the whole suffix, and the FIFO common
// case — taking the front — is a pointer bump. Pushing at capacity compacts
// the live region back to the front, recycling the consumed slots instead
// of growing, so a mailbox reaches a steady state where push/take never
// allocate.
#pragma once

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "common/envelope.hpp"

namespace rcp::sim {

class Mailbox {
 public:
  void push(Envelope env) { emplace() = std::move(env); }

  /// Appends a default Envelope and returns it for in-place filling —
  /// lets the broadcast fan-out write each copy straight into the buffer
  /// slot instead of moving a stack temporary in.
  [[nodiscard]] Envelope& emplace();

  [[nodiscard]] bool empty() const noexcept {
    return head_ == messages_.size();
  }
  [[nodiscard]] std::size_t size() const noexcept {
    return messages_.size() - head_;
  }

  /// All buffered messages, in arrival order (stable between mutations).
  [[nodiscard]] std::span<const Envelope> contents() const noexcept {
    return {messages_.data() + head_, messages_.size() - head_};
  }

  /// Removes and returns the message at `index`. Order of the remaining
  /// messages is *not* preserved (swap-remove); delivery policies that care
  /// about arrival order must use take_front_preserving().
  [[nodiscard]] Envelope take(std::size_t index);

  /// Removes and returns the message at `index`, preserving the relative
  /// order of the rest. O(index) — O(1) for the front, which is what
  /// FIFO-style policies take.
  [[nodiscard]] Envelope take_front_preserving(std::size_t index);

  void clear() noexcept {
    messages_.clear();
    head_ = 0;
  }

 private:
  std::vector<Envelope> messages_;
  std::size_t head_ = 0;  ///< consumed slots before the live region
};

}  // namespace rcp::sim
