// Per-process message buffer.
//
// The paper's message system "maintains for each process a message buffer of
// messages sent to it but not yet received"; receive() removes *some*
// message nondeterministically. The Mailbox supports O(1) removal at an
// arbitrary index so delivery policies can realise any nondeterministic
// choice.
#pragma once

#include <cstddef>
#include <vector>

#include "sim/message.hpp"

namespace rcp::sim {

class Mailbox {
 public:
  void push(Envelope env) { messages_.push_back(std::move(env)); }

  [[nodiscard]] bool empty() const noexcept { return messages_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return messages_.size(); }

  /// All buffered messages, in arrival order (stable between mutations).
  [[nodiscard]] const std::vector<Envelope>& contents() const noexcept {
    return messages_;
  }

  /// Removes and returns the message at `index`. Order of the remaining
  /// messages is *not* preserved (swap-remove); delivery policies that care
  /// about arrival order must use take_front_preserving().
  [[nodiscard]] Envelope take(std::size_t index);

  /// Removes and returns the message at `index`, preserving the relative
  /// order of the rest (O(size) shift). Used by FIFO-style policies.
  [[nodiscard]] Envelope take_front_preserving(std::size_t index);

  void clear() noexcept { messages_.clear(); }

 private:
  std::vector<Envelope> messages_;
};

}  // namespace rcp::sim
