#include "sim/scheduler.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace rcp::sim {

ProcessId RandomScheduler::pick(std::span<const ProcessId> eligible,
                                Rng& rng) {
  RCP_EXPECT(!eligible.empty(), "scheduler invoked with no eligible process");
  return eligible[static_cast<std::size_t>(rng.below(eligible.size()))];
}

ProcessId RoundRobinScheduler::pick(std::span<const ProcessId> eligible,
                                    Rng& /*rng*/) {
  RCP_EXPECT(!eligible.empty(), "scheduler invoked with no eligible process");
  if (!started_) {
    started_ = true;
    last_ = eligible.front();
    return last_;
  }
  // Smallest eligible id strictly greater than last_, wrapping around.
  const auto it = std::upper_bound(eligible.begin(), eligible.end(), last_);
  last_ = (it == eligible.end()) ? eligible.front() : *it;
  return last_;
}

std::unique_ptr<SchedulerPolicy> make_random_scheduler() {
  // rcp-lint: allow(hot-alloc) one-time policy construction
  return std::make_unique<RandomScheduler>();
}

std::unique_ptr<SchedulerPolicy> make_round_robin_scheduler() {
  // rcp-lint: allow(hot-alloc) one-time policy construction
  return std::make_unique<RoundRobinScheduler>();
}

}  // namespace rcp::sim
