// X1 (extension ablation) — what does reliable broadcast buy Ben-Or?
//
// The paper's echo machinery grew into Bracha's reliable broadcast; this
// bench quantifies the first step of that lineage. A report equivocator
// (one faulty process, within k = floor((n-1)/5)) tells each half of the
// system a different value every round:
//   * plain Ben-Or processes each count whatever they were privately told
//     (per-receiver equivocation is possible by construction);
//   * RB-hardened Ben-Or forces the adversary through broadcast: per round
//     it has ONE value at every correct process (or none) — its split
//     initials never reach the echo quorum. The bench measures what that
//     consistency costs (messages) and what it does not cost (rounds).
#include <cstdint>
#include <functional>
#include <iostream>
#include <memory>
#include <vector>

#include "adversary/benor_attack.hpp"
#include "baselines/benor.hpp"
#include "bench_util.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "adversary/byzantine.hpp"
#include "extensions/bracha87.hpp"
#include "extensions/rb_benor.hpp"
#include "runtime/parallel_series.hpp"
#include "sim/simulation.hpp"

namespace {

using namespace rcp;

const std::uint32_t kRuns = bench::env_runs(25);

bench::ThroughputMeter meter;

struct Measured {
  RunningStats rounds;
  RunningStats messages;
  std::uint32_t decided = 0;
  std::uint32_t agreed = 0;

  void merge(const Measured& other) {
    rounds.merge(other.rounds);
    messages.merge(other.messages);
    decided += other.decided;
    agreed += other.agreed;
  }
};

// The process factory must be safe to call concurrently: it only reads
// captured parameters and constructs fresh processes per trial.
template <typename MakeProcess>
Measured run_series(std::uint32_t n, MakeProcess&& make_process) {
  const bench::Stopwatch sw;
  Measured m = runtime::run_trials<Measured>(
      kRuns, 1,
      [n, &make_process](Measured& acc, std::uint64_t, std::uint64_t seed) {
        std::vector<std::unique_ptr<sim::Process>> procs;
        for (ProcessId p = 0; p < n; ++p) {
          procs.push_back(make_process(p));
        }
        sim::Simulation s(
            sim::SimConfig{.n = n, .seed = seed, .max_steps = 6'000'000},
            std::move(procs));
        s.mark_faulty(0);
        const auto result = s.run();
        if (result.status == sim::RunStatus::all_decided) {
          ++acc.decided;
          acc.rounds.add(static_cast<double>(s.metrics().max_phase));
          acc.messages.add(static_cast<double>(s.metrics().messages_sent));
        }
        if (s.agreement_holds()) {
          ++acc.agreed;
        }
      },
      bench::series_config());
  meter.note(kRuns, sw.seconds());
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  std::cout << "X1: reliable-broadcast hardening of Ben-Or under a report "
               "equivocator (process 0), balanced inputs, " << kRuns
            << " seeds\n\n";
  Table table({"n", "k", "variant", "decided", "agreed", "rounds(mean)",
               "rounds(max)", "msgs(mean)"});
  for (const std::uint32_t n : {6u, 11u, 16u}) {
    const std::uint32_t k = (n - 1) / 5;
    const core::ConsensusParams params{n, k};
    const auto input = [](ProcessId p) {
      return p % 2 == 0 ? Value::zero : Value::one;
    };

    const Measured plain = run_series(n, [&](ProcessId p) {
      if (p == 0) {
        return std::unique_ptr<sim::Process>(
            std::make_unique<adversary::BenOrEquivocator>(params));
      }
      return std::unique_ptr<sim::Process>(baselines::BenOrConsensus::make(
          params, baselines::BenOrVariant::byzantine, input(p)));
    });
    const Measured hardened = run_series(n, [&](ProcessId p) {
      if (p == 0) {
        return std::unique_ptr<sim::Process>(
            std::make_unique<adversary::BenOrEquivocator>(params));
      }
      return std::unique_ptr<sim::Process>(ext::RbBenOr::make(params, input(p)));
    });

    for (const auto& [label, m] :
         {std::pair<const char*, const Measured*>{"plain Ben-Or", &plain},
          std::pair<const char*, const Measured*>{"RB-hardened", &hardened}}) {
      table.row()
          .cell(static_cast<std::uint64_t>(n))
          .cell(static_cast<std::uint64_t>(k))
          .cell(label)
          .cell(std::to_string(m->decided) + "/" + std::to_string(kRuns))
          .cell(std::to_string(m->agreed) + "/" + std::to_string(kRuns))
          .cell(m->rounds.mean(), 2)
          .cell(m->rounds.max(), 0)
          .cell(m->messages.mean(), 0);
    }
  }
  table.print(std::cout);

  // The resilience ladder: each protocol at its own maximal k, with that
  // many silent Byzantine processes.
  std::cout << "\nResilience ladder (silent faults at each protocol's own "
               "maximal k, " << kRuns << " seeds):\n";
  Table ladder({"n", "protocol", "k_max", "decided", "agreed",
                "rounds(mean)"});
  for (const std::uint32_t n : {11u, 16u}) {
    struct Row {
      const char* label;
      std::uint32_t k;
      std::function<std::unique_ptr<sim::Process>(ProcessId, std::uint32_t)>
          make;
    };
    const std::uint32_t k5 = (n - 1) / 5;
    const std::uint32_t k3 = (n - 1) / 3;
    const Row rows[] = {
        {"plain Ben-Or", k5,
         [&](ProcessId p, std::uint32_t k) {
           return std::unique_ptr<sim::Process>(baselines::BenOrConsensus::make(
               {n, k}, baselines::BenOrVariant::byzantine,
               p % 2 == 0 ? Value::zero : Value::one));
         }},
        {"RB-hardened Ben-Or", k5,
         [&](ProcessId p, std::uint32_t k) {
           return std::unique_ptr<sim::Process>(ext::RbBenOr::make(
               {n, k}, p % 2 == 0 ? Value::zero : Value::one));
         }},
        {"Bracha-87 (validated)", k3,
         [&](ProcessId p, std::uint32_t k) {
           return std::unique_ptr<sim::Process>(ext::Bracha87::make(
               {n, k}, p % 2 == 0 ? Value::zero : Value::one));
         }},
    };
    for (const Row& row : rows) {
      const bench::Stopwatch sw;
      const Measured m = runtime::run_trials<Measured>(
          kRuns, 1,
          [n, &row](Measured& acc, std::uint64_t, std::uint64_t seed) {
            std::vector<std::unique_ptr<sim::Process>> procs;
            for (ProcessId p = 0; p < n; ++p) {
              if (p < row.k) {
                procs.push_back(
                    std::make_unique<adversary::SilentByzantine>());
              } else {
                procs.push_back(row.make(p, row.k));
              }
            }
            sim::Simulation s(
                sim::SimConfig{.n = n, .seed = seed, .max_steps = 8'000'000},
                std::move(procs));
            for (ProcessId p = 0; p < row.k; ++p) {
              s.mark_faulty(p);
            }
            const auto result = s.run();
            if (result.status == sim::RunStatus::all_decided) {
              ++acc.decided;
              acc.rounds.add(static_cast<double>(s.metrics().max_phase));
            }
            if (s.agreement_holds()) {
              ++acc.agreed;
            }
          },
          bench::series_config());
      meter.note(kRuns, sw.seconds());
      ladder.row()
          .cell(static_cast<std::uint64_t>(n))
          .cell(row.label)
          .cell(static_cast<std::uint64_t>(row.k))
          .cell(std::to_string(m.decided) + "/" + std::to_string(kRuns))
          .cell(std::to_string(m.agreed) + "/" + std::to_string(kRuns))
          .cell(m.rounds.mean(), 2);
    }
  }
  ladder.print(std::cout);

  std::cout << "\nReading: one equivocator is within both variants' fault "
               "budget, so agreement holds everywhere and the round counts "
               "are comparable — Ben-Or's thresholds already absorb this "
               "much equivocation. What RB buys is not speed but a "
               "stronger artifact: a per-round transcript in which every "
               "correct process observed the SAME value per origin (the "
               "adversary's split initials simply fail the echo quorum), "
               "at roughly an n-times message cost. That consistency is the "
               "building block the 1987 follow-on protocols (and the "
               "HoneyBadger lineage) are built from.\n";
  return bench::finish(meter, "x1_rb_hardening", argc, argv);
}
