// X2 (ablation) — how much does the message system's behaviour matter?
//
// The paper's convergence proofs rest on one assumption: every possible
// view has a fixed positive probability of being the one seen. This bench
// sweeps delivery policies from well-behaved to unfair and reports
// completion rate and phase counts for Figure 2:
//   * uniform, uniform+phi, FIFO, sender-starving: fair — must complete;
//   * LIFO, newest-half-biased: unfair (old messages have probability ~0
//     of delivery under sustained traffic) — can livelock, demonstrating
//     the assumption is necessary, not decorative.
#include <cstdint>
#include <iostream>
#include <memory>

#include "adversary/delivery.hpp"
#include "adversary/scenario.hpp"
#include "bench_util.hpp"
#include "common/table.hpp"

namespace {

using namespace rcp;
using adversary::ProtocolKind;
using adversary::Scenario;

const std::uint32_t kRuns = bench::env_runs(25);
constexpr std::uint32_t kN = 9;

bench::ThroughputMeter meter;

using Factory = std::unique_ptr<sim::DeliveryPolicy> (*)();

std::unique_ptr<sim::DeliveryPolicy> uniform() {
  return sim::make_uniform_delivery();
}
std::unique_ptr<sim::DeliveryPolicy> uniform_phi() {
  return sim::make_uniform_delivery(0.3);
}
std::unique_ptr<sim::DeliveryPolicy> fifo() {
  return sim::make_fifo_delivery();
}
std::unique_ptr<sim::DeliveryPolicy> starve() {
  return std::make_unique<adversary::StarveSendersDelivery>(
      kN, std::vector<ProcessId>{0, 1});
}
std::unique_ptr<sim::DeliveryPolicy> lifo() {
  return sim::make_lifo_delivery();
}
std::unique_ptr<sim::DeliveryPolicy> newest_half() {
  return std::make_unique<adversary::NewestHalfDelivery>();
}

}  // namespace

int main(int argc, char** argv) {
  std::cout << "X2: delivery-policy ablation, Figure 2 at n = " << kN
            << ", k = 2, alternating inputs, " << kRuns << " seeds\n\n";
  Table table({"delivery", "fairness", "decided", "agreed", "phases(mean)",
               "steps(mean)"});
  const std::pair<const char*, Factory> policies[] = {
      {"uniform (paper model)", uniform}, {"uniform + 30% phi", uniform_phi},
      {"FIFO", fifo},                     {"starve two senders", starve},
      {"LIFO", lifo},                     {"newest-half biased", newest_half},
  };
  const bool fair[] = {true, true, true, true, false, false};
  int idx = 0;
  for (const auto& [label, factory] : policies) {
    Scenario s;
    s.protocol = ProtocolKind::malicious;
    s.params = {kN, 2};
    s.inputs = adversary::alternating_inputs(kN);
    s.max_steps = fair[idx] ? 2'000'000 : 250'000;
    const auto r = bench::run_series(s, kRuns, 1, factory);
    meter.note(r);
    table.row()
        .cell(label)
        .cell(fair[idx] ? "fair" : "UNFAIR")
        .cell(std::to_string(r.decided) + "/" + std::to_string(r.runs))
        .cell(std::to_string(r.agreed) + "/" + std::to_string(r.runs))
        .cell(r.decided > 0 ? format_double(r.phases.mean(), 2) : "-")
        .cell(r.decided > 0 ? format_double(r.steps.mean(), 0) : "-");
    ++idx;
  }
  table.print(std::cout);
  std::cout << "\nReading: fair rows complete 100% within ~2-3 phases; the "
               "unfair orderings need several times as many phases under a "
               "random scheduler and livelock outright under a "
               "deterministic round-robin one (see the delivery sweep "
               "tests) — yet agreement never breaks. The paper's "
               "probabilistic assumption buys convergence only; "
               "consistency never depends on it.\n";
  return bench::finish(meter, "x2_delivery_fairness", argc, argv);
}
