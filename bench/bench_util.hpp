// Shared measurement helpers for the experiment harnesses (bench_e*).
//
// As of the parallel runtime (src/runtime/, docs/RUNTIME.md) every series
// here is sharded across a TrialPool: trial r of a series draws seed
// trial_seed(base_seed, r), and aggregates are bit-identical for any
// thread count. RCP_THREADS overrides the hardware_concurrency default.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <ostream>
#include <utility>

#include "adversary/scenario.hpp"
#include "common/table.hpp"
#include "runtime/parallel_series.hpp"
#include "runtime/scenario_series.hpp"

namespace rcp::bench {

using runtime::SeriesResult;

/// Series configuration shared by the harnesses: default thread count
/// (RCP_THREADS env or hardware_concurrency) and default shard size.
[[nodiscard]] inline runtime::SeriesConfig series_config() noexcept {
  return runtime::SeriesConfig{};
}

/// Runs `scenario` for trials 0..runs-1 (seed trial_seed(base_seed, r))
/// and aggregates; see runtime::SeriesResult for conditioning semantics.
/// `delivery_factory` may be null (uniform delivery) and is invoked
/// concurrently from worker threads.
template <typename DeliveryFactory>
SeriesResult run_series(adversary::Scenario scenario, std::uint32_t runs,
                        std::uint64_t base_seed,
                        DeliveryFactory&& delivery_factory) {
  return runtime::run_scenario_series(
      scenario, runs, base_seed,
      runtime::DeliveryFactory(std::forward<DeliveryFactory>(delivery_factory)),
      series_config());
}

inline SeriesResult run_series(adversary::Scenario scenario, std::uint32_t runs,
                               std::uint64_t base_seed = 1) {
  return runtime::run_scenario_series(scenario, runs, base_seed, {},
                                      series_config());
}

/// Wall-clock helper for harness loops that drive runtime::run_trials
/// directly (no SeriesResult to read the timing from).
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Accumulates trial counts and wall-clock across the series of one
/// harness and prints the `[runtime]` throughput footer the BENCH_*.json
/// trajectories track for speedup comparisons.
class ThroughputMeter {
 public:
  void note(const SeriesResult& result) {
    note(result.runs, result.wall_seconds);
  }
  void note(std::uint64_t trials, double seconds) {
    trials_ += trials;
    seconds_ += seconds;
    ++series_;
  }

  void print(std::ostream& os) const {
    os << "[runtime] threads=" << runtime::default_threads()
       << " series=" << series_ << " trials=" << trials_
       << " wall=" << format_double(seconds_, 3) << "s trials/sec="
       << format_double(
              seconds_ > 0.0 ? static_cast<double>(trials_) / seconds_ : 0.0,
              1)
       << "\n";
  }

 private:
  std::uint64_t trials_ = 0;
  std::uint64_t series_ = 0;
  double seconds_ = 0.0;
};

}  // namespace rcp::bench
