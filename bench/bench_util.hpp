// Shared measurement helpers for the experiment harnesses (bench_e*).
//
// As of the parallel runtime (src/runtime/, docs/RUNTIME.md) every series
// here is sharded across a TrialPool: trial r of a series draws seed
// trial_seed(base_seed, r), and aggregates are bit-identical for any
// thread count. RCP_THREADS overrides the hardware_concurrency default.
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "adversary/scenario.hpp"
#include "common/json.hpp"
#include "common/table.hpp"
#include "runtime/parallel_series.hpp"
#include "runtime/scenario_series.hpp"

namespace rcp::bench {

using runtime::SeriesResult;

/// Trial count for one series: `fallback`, unless the RCP_BENCH_RUNS
/// environment variable is a positive integer. The perf-smoke ctest label
/// sets it to 2 so every harness finishes in well under a second; the
/// numbers in the tables are then meaningless, but the code paths (and the
/// --json plumbing) still run end to end.
[[nodiscard]] inline std::uint32_t env_runs(std::uint32_t fallback) noexcept {
  if (const char* env = std::getenv("RCP_BENCH_RUNS")) {
    char* end = nullptr;
    const unsigned long v = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0' && v > 0 &&
        v <= 1'000'000'000ul) {
      return static_cast<std::uint32_t>(v);
    }
  }
  return fallback;
}

/// Series configuration shared by the harnesses: default thread count
/// (RCP_THREADS env or hardware_concurrency) and default shard size.
[[nodiscard]] inline runtime::SeriesConfig series_config() noexcept {
  return runtime::SeriesConfig{};
}

/// Runs `scenario` for trials 0..runs-1 (seed trial_seed(base_seed, r))
/// and aggregates; see runtime::SeriesResult for conditioning semantics.
/// `delivery_factory` may be null (uniform delivery) and is invoked
/// concurrently from worker threads.
template <typename DeliveryFactory>
SeriesResult run_series(adversary::Scenario scenario, std::uint32_t runs,
                        std::uint64_t base_seed,
                        DeliveryFactory&& delivery_factory) {
  return runtime::run_scenario_series(
      scenario, runs, base_seed,
      runtime::DeliveryFactory(std::forward<DeliveryFactory>(delivery_factory)),
      series_config());
}

inline SeriesResult run_series(adversary::Scenario scenario, std::uint32_t runs,
                               std::uint64_t base_seed = 1) {
  return runtime::run_scenario_series(scenario, runs, base_seed, {},
                                      series_config());
}

/// Wall-clock helper for harness loops that drive runtime::run_trials
/// directly (no SeriesResult to read the timing from).
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// One series as remembered for the JSON report: always the trial count and
/// wall-clock; consensus statistics only when the series came through a
/// SeriesResult (the Markov/raw-run_trials harnesses time custom
/// accumulators, so only throughput is meaningful there).
struct SeriesRecord {
  /// Optional stable identifier emitted into the JSON report; the CI bench
  /// regression gate (tools/check_bench_regression.py) matches series by
  /// label, so labelled entries must keep their names across runs.
  std::string label;
  std::uint64_t trials = 0;
  double wall_seconds = 0.0;
  bool has_stats = false;
  std::uint32_t decided = 0;
  std::uint32_t agreed = 0;
  std::uint32_t decided_one = 0;
  RunningStats phases;
  RunningStats steps;
  RunningStats messages;
};

/// Accumulates trial counts and wall-clock across the series of one
/// harness, prints the `[runtime]` throughput footer, and keeps a
/// per-series record for the --json report (see finish()).
class ThroughputMeter {
 public:
  void note(const SeriesResult& result) {
    SeriesRecord rec;
    rec.trials = result.runs;
    rec.wall_seconds = result.wall_seconds;
    rec.has_stats = true;
    rec.decided = result.decided;
    rec.agreed = result.agreed;
    rec.decided_one = result.decided_one;
    rec.phases = result.phases;
    rec.steps = result.steps;
    rec.messages = result.messages;
    note(rec);
  }
  void note(std::uint64_t trials, double seconds) {
    SeriesRecord rec;
    rec.trials = trials;
    rec.wall_seconds = seconds;
    note(rec);
  }
  /// Labelled variant for series the CI regression gate tracks by name.
  void note_labeled(std::string label, std::uint64_t trials, double seconds) {
    SeriesRecord rec;
    rec.label = std::move(label);
    rec.trials = trials;
    rec.wall_seconds = seconds;
    note(rec);
  }

  void print(std::ostream& os) const {
    os << "[runtime] threads=" << runtime::default_threads()
       << " series=" << records_.size() << " trials=" << trials_
       << " wall=" << format_double(seconds_, 3) << "s trials/sec="
       << format_double(
              seconds_ > 0.0 ? static_cast<double>(trials_) / seconds_ : 0.0,
              1)
       << "\n";
  }

  [[nodiscard]] const std::vector<SeriesRecord>& records() const noexcept {
    return records_;
  }
  [[nodiscard]] std::uint64_t trials() const noexcept { return trials_; }
  [[nodiscard]] double seconds() const noexcept { return seconds_; }

 private:
  void note(SeriesRecord rec) {
    trials_ += rec.trials;
    seconds_ += rec.wall_seconds;
    records_.push_back(std::move(rec));
  }

  std::uint64_t trials_ = 0;
  double seconds_ = 0.0;
  std::vector<SeriesRecord> records_;
};

/// Serialises one harness run as the rcp-bench-v1 JSON document tracked in
/// BENCH_BASELINE.json: per-series trial counts, decide/agree tallies and
/// phase/step/message statistics, plus whole-run throughput totals.
inline void write_report(std::ostream& os, std::string_view harness,
                         const ThroughputMeter& meter) {
  const auto stats = [](JsonWriter& w, std::string_view key,
                        const RunningStats& s) {
    w.key(key);
    w.begin_object();
    w.field("count", s.count());
    w.field("mean", s.mean());
    w.field("stddev", s.stddev());
    w.field("min", s.min());
    w.field("max", s.max());
    w.end_object();
  };
  JsonWriter w(os);
  w.begin_object();
  w.field("schema", "rcp-bench-v1");
  w.field("harness", harness);
  w.field("threads", runtime::default_threads());
  w.key("series");
  w.begin_array();
  for (const SeriesRecord& rec : meter.records()) {
    w.begin_object();
    if (!rec.label.empty()) {
      w.field("label", rec.label);
    }
    w.field("trials", rec.trials);
    w.field("wall_seconds", rec.wall_seconds);
    w.field("trials_per_sec", rec.wall_seconds > 0.0
                                  ? static_cast<double>(rec.trials) /
                                        rec.wall_seconds
                                  : 0.0);
    if (rec.has_stats) {
      w.field("decided", rec.decided);
      w.field("agreed", rec.agreed);
      w.field("decided_one", rec.decided_one);
      stats(w, "phases", rec.phases);
      stats(w, "steps", rec.steps);
      stats(w, "messages", rec.messages);
    }
    w.end_object();
  }
  w.end_array();
  w.key("totals");
  w.begin_object();
  w.field("series", static_cast<std::uint64_t>(meter.records().size()));
  w.field("trials", meter.trials());
  w.field("wall_seconds", meter.seconds());
  w.field("trials_per_sec",
          meter.seconds() > 0.0
              ? static_cast<double>(meter.trials()) / meter.seconds()
              : 0.0);
  w.end_object();
  w.end_object();
  os << "\n";
}

/// Shared epilogue for every harness main: prints the `[runtime]` footer
/// and, when the command line carries `--json <path>`, writes the
/// machine-readable report there. Returns main's exit status (non-zero if
/// the report file cannot be written).
inline int finish(const ThroughputMeter& meter, std::string_view harness,
                  int argc, char** argv) {
  meter.print(std::cout);
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string_view(argv[i]) == "--json") {
      const char* path = argv[i + 1];
      std::ofstream out(path);
      if (!out) {
        std::cerr << "error: cannot open " << path << " for writing\n";
        return 1;
      }
      write_report(out, harness, meter);
      std::cout << "[json] wrote " << path << "\n";
    }
  }
  return 0;
}

}  // namespace rcp::bench
