// Shared measurement helpers for the experiment harnesses (bench_e*).
#pragma once

#include <cstdint>
#include <memory>

#include "adversary/scenario.hpp"
#include "common/stats.hpp"
#include "sim/simulation.hpp"

namespace rcp::bench {

struct SeriesResult {
  RunningStats phases;      ///< max phase among correct at completion
  RunningStats steps;       ///< atomic steps to completion
  RunningStats messages;    ///< messages sent
  std::uint32_t runs = 0;
  std::uint32_t decided = 0;    ///< runs where every correct process decided
  std::uint32_t agreed = 0;     ///< runs where agreement held
  std::uint32_t decided_one = 0;  ///< runs whose common decision was 1
};

/// Runs `scenario` for seeds base_seed .. base_seed+runs-1 and aggregates.
/// `delivery_factory` may be null (uniform delivery).
template <typename DeliveryFactory>
SeriesResult run_series(adversary::Scenario scenario, std::uint32_t runs,
                        std::uint64_t base_seed,
                        DeliveryFactory&& delivery_factory) {
  SeriesResult out;
  for (std::uint32_t r = 0; r < runs; ++r) {
    scenario.seed = base_seed + r;
    auto simulation = adversary::build(scenario, delivery_factory());
    const sim::RunResult result = simulation->run();
    ++out.runs;
    if (result.status == sim::RunStatus::all_decided) {
      ++out.decided;
      out.phases.add(static_cast<double>(simulation->metrics().max_phase));
      out.steps.add(static_cast<double>(result.steps));
      out.messages.add(static_cast<double>(simulation->metrics().messages_sent));
    }
    if (simulation->agreement_holds()) {
      ++out.agreed;
    }
    if (simulation->agreed_value() == Value::one) {
      ++out.decided_one;
    }
  }
  return out;
}

inline SeriesResult run_series(adversary::Scenario scenario, std::uint32_t runs,
                               std::uint64_t base_seed = 1) {
  return run_series(std::move(scenario), runs, base_seed,
                    [] { return std::unique_ptr<sim::DeliveryPolicy>(); });
}

}  // namespace rcp::bench
