// E2 — Figure 2 / Theorem 4: the malicious protocol under every implemented
// Byzantine strategy.
//
// Paper claims reproduced:
//   * k-resilient for k <= floor((n-1)/3) — termination and agreement hold
//     against silent, equivocating and babbling adversaries at full k;
//   * the balancing strategy (Section 4's worst case) slows convergence
//     sharply, which is why the paper restricts its analysis to k <= n/5 —
//     we run the balancer in that regime.
#include <algorithm>
#include <cstdint>
#include <iostream>

#include "adversary/scenario.hpp"
#include "bench_util.hpp"
#include "common/table.hpp"

namespace {

using namespace rcp;
using adversary::ByzantineKind;
using adversary::ProtocolKind;
using adversary::Scenario;

const std::uint32_t kRuns = bench::env_runs(25);

bench::ThroughputMeter meter;

}  // namespace

int main(int argc, char** argv) {
  std::cout << "E2: Figure 2 malicious consensus (Theorem 4), " << kRuns
            << " seeds per row, alternating inputs\n\n";
  Table table({"n", "k", "adversary", "decided", "agreed", "phases(mean)",
               "phases(max)", "steps(mean)", "msgs(mean)"});
  for (const std::uint32_t n : {4u, 7u, 10u, 13u, 16u}) {
    const std::uint32_t k_max =
        core::max_resilience(core::FaultModel::malicious, n);
    for (const auto kind :
         {ByzantineKind::silent, ByzantineKind::equivocator,
          ByzantineKind::babbler, ByzantineKind::balancer}) {
      const std::uint32_t k =
          kind == ByzantineKind::balancer ? std::max(1u, n / 5) : k_max;
      Scenario s;
      s.protocol = ProtocolKind::malicious;
      s.params = {n, k};
      s.inputs = adversary::alternating_inputs(n);
      s.byzantine_kind = kind;
      s.max_steps = 8'000'000;
      for (std::uint32_t b = 0; b < k; ++b) {
        s.byzantine_ids.push_back(static_cast<ProcessId>(b * n / k));
      }
      const auto r = bench::run_series(s, kRuns);
      meter.note(r);
      table.row()
          .cell(static_cast<std::uint64_t>(n))
          .cell(static_cast<std::uint64_t>(k))
          .cell(to_string(kind))
          .cell(std::to_string(r.decided) + "/" + std::to_string(r.runs))
          .cell(std::to_string(r.agreed) + "/" + std::to_string(r.runs))
          .cell(r.phases.mean(), 2)
          .cell(r.phases.max(), 0)
          .cell(r.steps.mean(), 0)
          .cell(r.messages.mean(), 0);
    }
  }
  table.print(std::cout);
  std::cout << "\nExpected shape (paper): all rows decide and agree 100%; "
               "the balancer rows (k <= n/5, Section 4.2 regime) converge "
               "in a handful of phases; equivocation wastes the adversary's "
               "votes entirely (its echoes never reach the (n+k)/2 quorum).\n";
  return bench::finish(meter, "e2_malicious", argc, argv);
}
