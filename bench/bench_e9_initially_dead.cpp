// E9 — Section 5: the weak-bivalence protocol for initially-dead processes
// (the [Fisc83] G+ construction from the footnote), realised in the
// lock-step round substrate (substitution documented in DESIGN.md).
//
// Reproduced claims:
//   * tolerates ANY number of initially-dead processes (up to n-1);
//   * weak bivalence: with all processes correct, both decision values are
//     reachable (the decision is the agreed bivalent function of the
//     inputs); with one or more deaths, the decision is pinned to 0;
//   * always exactly two rounds.
#include <cstdint>
#include <iostream>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "core/initially_dead.hpp"
#include "runtime/trial_pool.hpp"
#include "sim/lockstep.hpp"

namespace {

using namespace rcp;

bench::ThroughputMeter meter;

struct RunResultRow {
  bool all_decided = false;
  bool agreed = false;
  std::optional<Value> value;
  std::uint32_t rounds = 0;
};

RunResultRow run_once(std::uint32_t n, std::uint32_t ones,
                      std::uint32_t dead_count) {
  std::vector<std::unique_ptr<sim::LockstepProcess>> procs;
  for (ProcessId p = 0; p < n; ++p) {
    procs.push_back(std::make_unique<core::InitiallyDeadConsensus>(
        n, p, p < ones ? Value::one : Value::zero));
  }
  std::vector<bool> dead(n, false);
  for (std::uint32_t d = 0; d < dead_count; ++d) {
    dead[n - 1 - d] = true;  // kill from the top so inputs 1..ones survive
  }
  sim::LockstepSimulation sim(std::move(procs), dead);
  RunResultRow row;
  row.rounds = sim.run_until_decided(10);
  row.all_decided = sim.all_live_decided();
  row.agreed = sim.agreement_holds();
  for (ProcessId p = 0; p < n; ++p) {
    if (!sim.dead(p) && sim.decision_of(p).has_value()) {
      row.value = sim.decision_of(p);
      break;
    }
  }
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint32_t n = 9;
  std::cout << "E9: Section 5 initially-dead protocol (G+ construction), "
               "n = " << n << "\n\n";
  Table table({"ones/n", "initially dead", "rounds", "all decided", "agreed",
               "decision"});
  const std::uint32_t ones_grid[] = {0, 3, 5, 9};
  const std::uint32_t dead_grid[] = {0, 1, 3, 8};
  constexpr std::uint64_t kCells = 16;  // 4x4 grid, one run per cell
  // Every cell is an independent deterministic run, so we shard the grid
  // across the trial pool and fill a pre-sized result vector by index; the
  // table below reads it back in grid order, independent of schedule.
  std::vector<RunResultRow> rows(kCells);
  const bench::Stopwatch sw;
  {
    runtime::TrialPool pool(bench::series_config().threads);
    pool.for_each(kCells, [&](std::uint64_t cell, std::uint32_t) {
      const std::uint32_t ones = ones_grid[cell / 4];
      const std::uint32_t dead = dead_grid[cell % 4];
      rows[cell] = run_once(n, ones > n - dead ? n - dead : ones, dead);
    });
  }
  meter.note(kCells, sw.seconds());
  for (std::uint64_t cell = 0; cell < kCells; ++cell) {
    const std::uint32_t ones = ones_grid[cell / 4];
    const std::uint32_t dead = dead_grid[cell % 4];
    const RunResultRow& row = rows[cell];
    table.row()
        .cell(std::to_string(ones) + "/" + std::to_string(n))
        .cell(static_cast<std::uint64_t>(dead))
        .cell(static_cast<std::uint64_t>(row.rounds))
        .cell(row.all_decided ? "yes" : "no")
        .cell(row.agreed ? "yes" : "no")
        .cell(row.value.has_value()
                  ? (*row.value == Value::one ? "1" : "0")
                  : "-");
  }
  table.print(std::cout);
  std::cout
      << "\nExpected shape (paper): every row finishes in 2 rounds with "
         "agreement; rows with 0 dead decide the bivalent function of the "
         "inputs (majority, ties to 1 — so both values appear); every row "
         "with >= 1 dead decides 0, for ANY number of deaths up to n-1 — "
         "the weak-bivalence trade of Section 5.\n";
  return bench::finish(meter, "e9_initially_dead", argc, argv);
}
