// Micro-benchmarks (google-benchmark): the primitives every experiment
// rests on — RNG, codecs, echo acceptance, protocol steps, chain solves,
// and the simulator hot path (broadcast fan-out, raw step dispatch).
#include <benchmark/benchmark.h>

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "adversary/scenario.hpp"
#include "analysis/distributions.hpp"
#include "analysis/failstop_chain.hpp"
#include "analysis/markov.hpp"
#include "analysis/matrix.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "core/bitops.hpp"
#include "core/echo_engine.hpp"
#include "core/failstop.hpp"
#include "core/malicious.hpp"
#include "core/messages.hpp"
#include "core/reliable_broadcast.hpp"
#include "extensions/rb_engine.hpp"
#include "runtime/parallel_series.hpp"
#include "runtime/scenario_series.hpp"
#include "runtime/seeding.hpp"
#include "sim/simulation.hpp"

namespace {

using namespace rcp;

void BM_RngNext(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.next());
  }
}
BENCHMARK(BM_RngNext);

void BM_RngBelow(benchmark::State& state) {
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.below(7));
  }
}
BENCHMARK(BM_RngBelow);

void BM_EncodeDecodeFailStopMsg(benchmark::State& state) {
  const core::FailStopMsg msg{.phase = 12, .value = Value::one,
                              .cardinality = 9};
  for (auto _ : state) {
    const Bytes buf = msg.encode();
    benchmark::DoNotOptimize(core::FailStopMsg::decode(buf));
  }
}
BENCHMARK(BM_EncodeDecodeFailStopMsg);

void BM_EncodeDecodeEchoMsg(benchmark::State& state) {
  const core::EchoProtocolMsg msg{.is_echo = true, .from = 3,
                                  .value = Value::zero, .phase = 40};
  for (auto _ : state) {
    const Bytes buf = msg.encode();
    benchmark::DoNotOptimize(core::EchoProtocolMsg::decode(buf));
  }
}
BENCHMARK(BM_EncodeDecodeEchoMsg);

void BM_EncodeDecodeMajorityMsg(benchmark::State& state) {
  const core::MajorityMsg msg{.phase = 17, .value = Value::one};
  for (auto _ : state) {
    const Bytes buf = msg.encode();
    benchmark::DoNotOptimize(core::MajorityMsg::decode(buf));
  }
}
BENCHMARK(BM_EncodeDecodeMajorityMsg);

void BM_EncodeDecodeRbMsg(benchmark::State& state) {
  const core::RbMsg msg{.kind = core::RbMsg::Kind::ready, .value = Value::one};
  for (auto _ : state) {
    const Bytes buf = msg.encode();
    benchmark::DoNotOptimize(core::RbMsg::decode(buf));
  }
}
BENCHMARK(BM_EncodeDecodeRbMsg);

void BM_EncodeDecodeRbxMsg(benchmark::State& state) {
  const ext::RbxMsg msg{.kind = ext::RbxMsg::Kind::echo, .origin = 5,
                        .tag = 92, .value = 1};
  for (auto _ : state) {
    const Bytes buf = msg.encode();
    benchmark::DoNotOptimize(ext::RbxMsg::decode(buf));
  }
}
BENCHMARK(BM_EncodeDecodeRbxMsg);

/// Rebroadcasts every received payload to all n processes: each atomic step
/// is one delivery plus one n-message fan-out, which isolates the
/// broadcast/mailbox path of the simulator.
class FanoutProcess final : public sim::Process {
 public:
  void on_start(sim::Context& ctx) override {
    ctx.broadcast(core::EchoProtocolMsg{.is_echo = false,
                                        .from = ctx.self(),
                                        .value = Value::one,
                                        .phase = 0}
                      .encode());
  }
  void on_message(sim::Context& ctx, const sim::Envelope& env) override {
    ctx.broadcast(env.payload);
  }
};

void BM_BroadcastFanout(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  // Warm past the vector-growth phase (mailbox capacities settle above the
  // sizes the measured window reaches) so the timed region is the
  // steady-state fan-out path, not one-time container growth.
  constexpr int kWarmupSteps = 1500;
  constexpr int kSteps = 256;
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<std::unique_ptr<sim::Process>> procs;
    for (ProcessId p = 0; p < n; ++p) {
      procs.push_back(std::make_unique<FanoutProcess>());
    }
    sim::Simulation s(sim::SimConfig{.n = n, .seed = 3}, std::move(procs));
    s.start();
    for (int i = 0; i < kWarmupSteps && s.step(); ++i) {
    }
    state.ResumeTiming();
    for (int i = 0; i < kSteps && s.step(); ++i) {
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kSteps * n);
}
BENCHMARK(BM_BroadcastFanout)->Arg(7)->Arg(31)->Arg(101);

/// Requeues one self-addressed message per delivery, keeping every mailbox
/// at a steady one-message depth: measures raw step dispatch (eligible-set
/// maintenance, scheduler pick, mailbox take, context setup) with no
/// protocol work and no fan-out.
class SelfRefillProcess final : public sim::Process {
 public:
  void on_start(sim::Context& ctx) override {
    ctx.send(ctx.self(), core::MajorityMsg{.phase = 0, .value = Value::zero}
                             .encode());
  }
  void on_message(sim::Context& ctx, const sim::Envelope& env) override {
    ctx.send(ctx.self(), env.payload);
  }
};

void BM_StepDispatch(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  constexpr int kSteps = 256;
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<std::unique_ptr<sim::Process>> procs;
    for (ProcessId p = 0; p < n; ++p) {
      procs.push_back(std::make_unique<SelfRefillProcess>());
    }
    sim::Simulation s(sim::SimConfig{.n = n, .seed = 4}, std::move(procs));
    s.start();
    state.ResumeTiming();
    for (int i = 0; i < kSteps && s.step(); ++i) {
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kSteps);
}
BENCHMARK(BM_StepDispatch)->Arg(7)->Arg(31)->Arg(101);

// ---------------------------------------------------------------------------
// Bit-span kernels (core/bitops.hpp): the word-parallel substrate under the
// quorum primitives. Each bench runs the *dispatched* entry point, so the
// numbers reflect whatever backend (scalar or AVX2) the host resolved at
// startup; items/sec counts 64-bit words, and the regression gate covers
// these series via the BM_Bitops prefix (tools/check_bench_regression.py).
// Arg is the span length in words: 16 (one BitRows row at n=1001), 1024
// and 65536 (bulk window scans).

core::bitops::AlignedVector<std::uint64_t> random_words(std::size_t count) {
  Rng rng(0x5eed);
  core::bitops::AlignedVector<std::uint64_t> words(count, 0);
  for (auto& w : words) {
    w = rng.next();
  }
  return words;
}

void BM_BitopsPopcountWords(benchmark::State& state) {
  const auto count = static_cast<std::size_t>(state.range(0));
  const auto words = random_words(count);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::bitops::popcount_words(
        std::span<const std::uint64_t>(words.data(), words.size())));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(count));
}
BENCHMARK(BM_BitopsPopcountWords)->Arg(16)->Arg(1024)->Arg(65536);

void BM_BitopsFillWords(benchmark::State& state) {
  const auto count = static_cast<std::size_t>(state.range(0));
  core::bitops::AlignedVector<std::uint64_t> words(count, 0);
  for (auto _ : state) {
    core::bitops::fill_words(std::span<std::uint64_t>(words.data(), count), 0);
    benchmark::DoNotOptimize(words.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(count));
}
BENCHMARK(BM_BitopsFillWords)->Arg(16)->Arg(1024)->Arg(65536);

void BM_BitopsOrWords(benchmark::State& state) {
  const auto count = static_cast<std::size_t>(state.range(0));
  const auto src = random_words(count);
  core::bitops::AlignedVector<std::uint64_t> dst(count, 0);
  for (auto _ : state) {
    core::bitops::or_words(
        std::span<std::uint64_t>(dst.data(), count),
        std::span<const std::uint64_t>(src.data(), count));
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(count));
}
BENCHMARK(BM_BitopsOrWords)->Arg(16)->Arg(1024)->Arg(65536);

void BM_BitopsForEachSetBit(benchmark::State& state) {
  const auto count = static_cast<std::size_t>(state.range(0));
  const auto words = random_words(count);  // ~50% density
  for (auto _ : state) {
    std::uint64_t sum = 0;
    core::bitops::for_each_set_bit(
        std::span<const std::uint64_t>(words.data(), count),
        [&sum](std::size_t bit) { sum += bit; });
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(count));
}
BENCHMARK(BM_BitopsForEachSetBit)->Arg(16)->Arg(1024);

void BM_EchoEngineAcceptPath(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const core::ConsensusParams params{n, (n - 1) / 3};
  for (auto _ : state) {
    core::EchoEngine engine(params);
    for (ProcessId echoer = 0; echoer < n; ++echoer) {
      benchmark::DoNotOptimize(engine.handle(
          echoer,
          core::EchoProtocolMsg{.is_echo = true, .from = 0,
                                .value = Value::one, .phase = 0},
          0));
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_EchoEngineAcceptPath)->Arg(7)->Arg(31)->Arg(127)->Arg(301);

// Steady state: one engine absorbs full n x n echo matrices phase after
// phase (dedup bitsets recycled by advance(), counters flat). items/sec is
// echoes/sec — the number tools/check_bench_regression.py gates on.
void BM_EchoEngineSteadyState(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const core::ConsensusParams params{n, (n - 1) / 3};
  core::EchoEngine engine(params);
  Phase t = 0;
  for (auto _ : state) {
    for (ProcessId origin = 0; origin < n; ++origin) {
      for (ProcessId echoer = 0; echoer < n; ++echoer) {
        benchmark::DoNotOptimize(engine.handle(
            echoer,
            core::EchoProtocolMsg{.is_echo = true, .from = origin,
                                  .value = Value::one, .phase = t},
            t));
      }
    }
    (void)engine.advance(++t);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n *
                          n);
}
BENCHMARK(BM_EchoEngineSteadyState)
    ->Arg(7)
    ->Arg(31)
    ->Arg(127)
    ->Arg(301)
    ->Arg(1001);

void BM_SimulationStepFailStop(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const std::uint32_t k = (n - 1) / 2;
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<std::unique_ptr<sim::Process>> procs;
    for (ProcessId p = 0; p < n; ++p) {
      procs.push_back(core::FailStopConsensus::make(
          {n, k}, p % 2 == 0 ? Value::zero : Value::one));
    }
    sim::Simulation s(sim::SimConfig{.n = n, .seed = 5}, std::move(procs));
    s.start();
    state.ResumeTiming();
    for (int i = 0; i < 100 && s.step(); ++i) {
    }
  }
}
BENCHMARK(BM_SimulationStepFailStop)->Arg(7)->Arg(25);

void BM_FullConsensusRunMalicious(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const std::uint32_t k = (n - 1) / 3;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    std::vector<std::unique_ptr<sim::Process>> procs;
    for (ProcessId p = 0; p < n; ++p) {
      procs.push_back(core::MaliciousConsensus::make(
          {n, k}, p % 2 == 0 ? Value::zero : Value::one));
    }
    sim::Simulation s(sim::SimConfig{.n = n, .seed = seed++},
                      std::move(procs));
    benchmark::DoNotOptimize(s.run());
  }
}
BENCHMARK(BM_FullConsensusRunMalicious)->Arg(4)->Arg(7)->Arg(10);

void BM_HypergeometricTail(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        analysis::hypergeometric_tail_greater(300, 150, 200, 100));
  }
}
BENCHMARK(BM_HypergeometricTail);

void BM_FailStopChainBuildAndSolve(benchmark::State& state) {
  const auto n = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    analysis::FailStopChain chain(n);
    benchmark::DoNotOptimize(chain.expected_phases_from_balanced());
  }
}
BENCHMARK(BM_FailStopChainBuildAndSolve)->Arg(30)->Arg(120);

void BM_TrialSeed(benchmark::State& state) {
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(runtime::trial_seed(42, i++));
  }
}
BENCHMARK(BM_TrialSeed);

void BM_RunningStatsMerge(benchmark::State& state) {
  const auto samples = static_cast<std::uint64_t>(state.range(0));
  RunningStats a;
  RunningStats b;
  Rng rng(11);
  for (std::uint64_t i = 0; i < samples; ++i) {
    a.add(rng.uniform01());
    b.add(rng.uniform01());
  }
  for (auto _ : state) {
    RunningStats merged = a;
    merged.merge(b);
    benchmark::DoNotOptimize(merged);
  }
}
BENCHMARK(BM_RunningStatsMerge)->Arg(32)->Arg(4096);

// Whole-series throughput through the parallel runtime: the fail-stop
// scenario series at 1 thread vs default_threads(), same base seed. The
// aggregates are identical by construction; only wall time differs.
void BM_ScenarioSeries(benchmark::State& state) {
  const auto threads = static_cast<std::uint32_t>(state.range(0));
  adversary::Scenario s;
  s.protocol = adversary::ProtocolKind::fail_stop;
  s.params = {7, 3};
  s.inputs = adversary::alternating_inputs(7);
  runtime::SeriesConfig config;
  config.threads = threads;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        runtime::run_scenario_series(s, 16, 1, {}, config));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 16);
}
BENCHMARK(BM_ScenarioSeries)->Arg(1)->Arg(0)  // 0 -> default_threads()
    ->Unit(benchmark::kMillisecond);

void BM_MatrixInverse(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  analysis::Matrix m(n, n, 0.0);
  Rng rng(9);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      m.at(i, j) = rng.uniform01() + (i == j ? static_cast<double>(n) : 0.0);
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::inverse(m));
  }
}
BENCHMARK(BM_MatrixInverse)->Arg(16)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
