// X4 (engineering) — message complexity per phase, and the per-echo cost of
// absorbing it.
//
// The paper's protocols differ sharply in cost per phase:
//   Figure 1 / majority variant: each process broadcasts once -> O(n^2)
//     messages per phase;
//   Figure 2: each initial is echoed by everyone -> O(n^3);
//   reliable-broadcast-based protocols: O(n^3) per broadcast step.
// This bench measures messages-per-phase empirically and reports the
// scaling exponent between successive n. Because Figure 2's O(n^3) echo
// traffic all funnels through EchoEngine::handle(), the second half sweeps
// the engine's per-echo throughput across n ∈ {7, 31, 127, 301, 1001} —
// the series the flat quorum accounting and the word-parallel kernels
// (docs/PERF.md "Quorum accounting", "Word-parallel kernels") are
// accountable to. The labelled `echo_path_n*` series in the --json report
// feed the CI regression gate (tools/check_bench_regression.py) against
// BENCH_BASELINE.json.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <iostream>

#include "adversary/scenario.hpp"
#include "bench_util.hpp"
#include "common/table.hpp"
#include "core/echo_engine.hpp"
#include "core/messages.hpp"

namespace {

using namespace rcp;
using adversary::ProtocolKind;
using adversary::Scenario;

const std::uint32_t kRuns = bench::env_runs(15);

bench::ThroughputMeter meter;

double messages_per_phase(ProtocolKind protocol, std::uint32_t n) {
  const std::uint32_t k =
      protocol == ProtocolKind::fail_stop
          ? core::max_resilience(core::FaultModel::fail_stop, n)
          : core::max_resilience(core::FaultModel::malicious, n);
  Scenario s;
  s.protocol = protocol;
  s.params = {n, k};
  s.inputs = adversary::alternating_inputs(n);
  const auto r = bench::run_series(s, kRuns);
  meter.note(r);
  if (r.phases.mean() <= 0.0) {
    return 0.0;
  }
  return r.messages.mean() / r.phases.mean();
}

/// Drives `phases` full Figure 2 phases through one EchoEngine: every
/// origin's initial, the full n x n echo matrix, then the phase advance
/// with its deferred replay. Returns the number of echoes handled.
std::uint64_t drive_echo_phases(core::EchoEngine& engine, std::uint32_t n,
                                Phase& t, std::uint64_t phases) {
  std::uint64_t echoes = 0;
  for (std::uint64_t i = 0; i < phases; ++i, ++t) {
    for (ProcessId origin = 0; origin < n; ++origin) {
      const Value v = origin % 2 != 0 ? Value::one : Value::zero;
      (void)engine.handle(
          origin,
          core::EchoProtocolMsg{
              .is_echo = false, .from = origin, .value = v, .phase = t},
          t);
      for (ProcessId echoer = 0; echoer < n; ++echoer) {
        (void)engine.handle(
            echoer,
            core::EchoProtocolMsg{
                .is_echo = true, .from = origin, .value = v, .phase = t},
            t);
        ++echoes;
      }
    }
    (void)engine.advance(t + 1);
  }
  return echoes;
}

/// One sweep point: steady-state per-echo throughput at system size n.
void echo_path_point(Table& table, std::uint32_t n) {
  const core::ConsensusParams params{
      n, core::max_resilience(core::FaultModel::malicious, n)};
  core::EchoEngine engine(params);
  const std::uint64_t per_phase = static_cast<std::uint64_t>(n) * n;
  // Scale the workload with RCP_BENCH_RUNS so perf-smoke (2 runs) stays
  // fast while default runs measure millions of echoes per point.
  const std::uint64_t target = static_cast<std::uint64_t>(kRuns) * 130'000;
  const std::uint64_t phases = std::max<std::uint64_t>(2, target / per_phase);
  Phase t = 0;
  (void)drive_echo_phases(engine, n, t, phases / 4 + 1);  // warm
  const bench::Stopwatch timer;
  const std::uint64_t echoes = drive_echo_phases(engine, n, t, phases);
  const double secs = timer.seconds();
  const double per_sec = secs > 0.0 ? static_cast<double>(echoes) / secs : 0.0;
  table.row()
      .cell(static_cast<std::uint64_t>(n))
      .cell(echoes)
      .cell(per_sec, 0)
      .cell(per_sec > 0.0 ? 1e9 / per_sec : 0.0, 1)
      .cell(static_cast<std::uint64_t>(engine.memory_bytes()));
  meter.note_labeled("echo_path_n" + std::to_string(n), echoes, secs);
}

}  // namespace

int main(int argc, char** argv) {
  std::cout << "X4: messages per phase vs n (" << kRuns
            << " seeds, alternating inputs, k at each protocol's bound)\n\n";
  const std::uint32_t sizes[] = {4, 8, 16, 32};
  for (const auto protocol :
       {ProtocolKind::fail_stop, ProtocolKind::majority,
        ProtocolKind::malicious}) {
    Table table({"n", "msgs/phase", "growth vs previous n",
                 "implied exponent"});
    double prev = 0.0;
    for (const std::uint32_t n : sizes) {
      const double mpp = messages_per_phase(protocol, n);
      table.row().cell(static_cast<std::uint64_t>(n)).cell(mpp, 0);
      if (prev > 0.0) {
        const double growth = mpp / prev;
        table.cell(growth, 2).cell(std::log2(growth), 2);  // n doubles
      } else {
        table.cell("-").cell("-");
      }
      prev = mpp;
    }
    std::cout << to_string(protocol) << ":\n";
    table.print(std::cout);
    std::cout << "\n";
  }
  std::cout << "Expected shape: the fail-stop and majority tables show an "
               "implied exponent near 2 (quadratic broadcasts); Figure 2 "
               "shows near 3 (every initial echoed by everyone).\n\n";

  std::cout << "Echo-path n-sweep: EchoEngine steady-state per-echo cost "
               "(flat quorum accounting; k at the malicious bound)\n";
  Table echo_table({"n", "echoes", "echoes/sec", "ns/echo", "table bytes"});
  for (const std::uint32_t n : {7u, 31u, 127u, 301u, 1001u}) {
    echo_path_point(echo_table, n);
  }
  echo_table.print(std::cout);
  std::cout << "Expected shape: ns/echo stays flat as n grows (O(1) bitset "
               "dedup + tally), table bytes grow ~n^2 with the dedup "
               "window.\n";
  return bench::finish(meter, "x4_complexity", argc, argv);
}
