// X4 (engineering) — message complexity per phase.
//
// The paper's protocols differ sharply in cost per phase:
//   Figure 1 / majority variant: each process broadcasts once -> O(n^2)
//     messages per phase;
//   Figure 2: each initial is echoed by everyone -> O(n^3);
//   reliable-broadcast-based protocols: O(n^3) per broadcast step.
// This bench measures messages-per-phase empirically and reports the
// scaling exponent between successive n.
#include <cmath>
#include <cstdint>
#include <iostream>

#include "adversary/scenario.hpp"
#include "bench_util.hpp"
#include "common/table.hpp"

namespace {

using namespace rcp;
using adversary::ProtocolKind;
using adversary::Scenario;

const std::uint32_t kRuns = bench::env_runs(15);

bench::ThroughputMeter meter;

double messages_per_phase(ProtocolKind protocol, std::uint32_t n) {
  const std::uint32_t k =
      protocol == ProtocolKind::fail_stop
          ? core::max_resilience(core::FaultModel::fail_stop, n)
          : core::max_resilience(core::FaultModel::malicious, n);
  Scenario s;
  s.protocol = protocol;
  s.params = {n, k};
  s.inputs = adversary::alternating_inputs(n);
  const auto r = bench::run_series(s, kRuns);
  meter.note(r);
  if (r.phases.mean() <= 0.0) {
    return 0.0;
  }
  return r.messages.mean() / r.phases.mean();
}

}  // namespace

int main(int argc, char** argv) {
  std::cout << "X4: messages per phase vs n (" << kRuns
            << " seeds, alternating inputs, k at each protocol's bound)\n\n";
  const std::uint32_t sizes[] = {4, 8, 16, 32};
  for (const auto protocol :
       {ProtocolKind::fail_stop, ProtocolKind::majority,
        ProtocolKind::malicious}) {
    Table table({"n", "msgs/phase", "growth vs previous n",
                 "implied exponent"});
    double prev = 0.0;
    for (const std::uint32_t n : sizes) {
      const double mpp = messages_per_phase(protocol, n);
      table.row().cell(static_cast<std::uint64_t>(n)).cell(mpp, 0);
      if (prev > 0.0) {
        const double growth = mpp / prev;
        table.cell(growth, 2).cell(std::log2(growth), 2);  // n doubles
      } else {
        table.cell("-").cell("-");
      }
      prev = mpp;
    }
    std::cout << to_string(protocol) << ":\n";
    table.print(std::cout);
    std::cout << "\n";
  }
  std::cout << "Expected shape: the fail-stop and majority tables show an "
               "implied exponent near 2 (quadratic broadcasts); Figure 2 "
               "shows near 3 (every initial echoed by everyone).\n";
  return bench::finish(meter, "x4_complexity", argc, argv);
}
