// E1 — Figure 1 / Theorem 2: the fail-stop protocol across system sizes,
// resilience levels and crash schedules.
//
// Paper claims reproduced:
//   * k-resilient for every k <= floor((n-1)/2): 100% termination and
//     agreement under any crash pattern within budget;
//   * phases-to-decision stay small and essentially independent of n
//     (the Section 4 analysis bounds the comparable majority dynamics by a
//     constant).
#include <cstdint>
#include <iostream>

#include "adversary/crash_plan.hpp"
#include "adversary/scenario.hpp"
#include "bench_util.hpp"
#include "common/table.hpp"

namespace {

using namespace rcp;
using adversary::CrashPlan;
using adversary::ProtocolKind;
using adversary::Scenario;

const std::uint32_t kRuns = bench::env_runs(40);

bench::ThroughputMeter meter;

void sweep(const char* crash_label, bool with_crashes) {
  Table table({"n", "k", "crashes", "decided", "agreed", "phases(mean)",
               "phases(max)", "steps(mean)", "msgs(mean)"});
  for (const std::uint32_t n : {4u, 7u, 10u, 16u, 25u}) {
    const std::uint32_t k = core::max_resilience(core::FaultModel::fail_stop, n);
    Scenario s;
    s.protocol = ProtocolKind::fail_stop;
    s.params = {n, k};
    s.inputs = adversary::alternating_inputs(n);
    if (with_crashes) {
      s.crashes = CrashPlan::staggered(k);
    }
    const auto r = bench::run_series(s, kRuns);
    meter.note(r);
    table.row()
        .cell(static_cast<std::uint64_t>(n))
        .cell(static_cast<std::uint64_t>(k))
        .cell(with_crashes ? std::to_string(k) + " staggered" : "none")
        .cell(std::to_string(r.decided) + "/" + std::to_string(r.runs))
        .cell(std::to_string(r.agreed) + "/" + std::to_string(r.runs))
        .cell(r.phases.mean(), 2)
        .cell(r.phases.max(), 0)
        .cell(r.steps.mean(), 0)
        .cell(r.messages.mean(), 0);
  }
  std::cout << "Crash schedule: " << crash_label << "\n";
  table.print(std::cout);
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::cout << "E1: Figure 1 fail-stop consensus (Theorem 2), " << kRuns
            << " seeds per row, alternating inputs\n\n";
  sweep("none (all processes correct)", false);
  sweep("k staggered deaths, one per phase boundary", true);
  std::cout << "Expected shape (paper): every row decides and agrees "
               "100%; mean phases stay O(1) as n grows.\n";
  return bench::finish(meter, "e1_failstop", argc, argv);
}
