// E6 — the conclusion's comparison with Ben-Or [BenO83]:
// "The protocols are similar to those given in this paper, but
//  randomization is incorporated in the protocol itself. They have an
//  exponential expected termination time in the fail-stop case, and, in
//  the malicious case, they can overcome up to n/5 malicious processes."
//
// We race Figure 1 (message-system randomness) against Ben-Or (private
// coins) from a balanced start at maximal crash resilience k =
// floor((n-1)/2). Ben-Or's rounds from a balanced start require all
// processes' coins to align, so its expected round count grows rapidly
// with n, while Figure 1's phase count stays flat. We also report the
// resilience gap in the malicious case: floor((n-1)/3) vs floor((n-1)/5).
#include <cstdint>
#include <iostream>
#include <memory>
#include <vector>

#include "baselines/benor.hpp"
#include "bench_util.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/failstop.hpp"
#include "core/params.hpp"
#include "runtime/parallel_series.hpp"
#include "sim/simulation.hpp"

namespace {

using namespace rcp;
using baselines::BenOrConsensus;
using baselines::BenOrVariant;

const std::uint32_t kRuns = bench::env_runs(30);

bench::ThroughputMeter meter;

struct Measured {
  RunningStats phases;
  RunningStats coin_flips;
  std::uint32_t decided = 0;

  void merge(const Measured& other) {
    phases.merge(other.phases);
    coin_flips.merge(other.coin_flips);
    decided += other.decided;
  }
};

template <typename TrialFn>
Measured measure_series(std::uint64_t base_seed, TrialFn&& fn) {
  const bench::Stopwatch sw;
  Measured m = runtime::run_trials<Measured>(kRuns, base_seed,
                                             std::forward<TrialFn>(fn),
                                             bench::series_config());
  meter.note(kRuns, sw.seconds());
  return m;
}

Measured run_benor(std::uint32_t n, std::uint32_t k) {
  return measure_series(
      1'000 + n, [n, k](Measured& m, std::uint64_t, std::uint64_t seed) {
        std::vector<std::unique_ptr<sim::Process>> procs;
        std::vector<BenOrConsensus*> raw;
        for (ProcessId p = 0; p < n; ++p) {
          auto b = BenOrConsensus::make({n, k}, BenOrVariant::crash,
                                        p % 2 == 0 ? Value::zero : Value::one);
          raw.push_back(b.get());
          procs.push_back(std::move(b));
        }
        sim::Simulation s(
            sim::SimConfig{.n = n, .seed = seed, .max_steps = 4'000'000},
            std::move(procs));
        const auto result = s.run();
        if (result.status == sim::RunStatus::all_decided) {
          ++m.decided;
          m.phases.add(static_cast<double>(s.metrics().max_phase));
          std::uint64_t flips = 0;
          for (auto* b : raw) {
            flips += b->coin_flips();
          }
          m.coin_flips.add(static_cast<double>(flips));
        }
      });
}

Measured run_figure1(std::uint32_t n, std::uint32_t k) {
  return measure_series(
      2'000 + n, [n, k](Measured& m, std::uint64_t, std::uint64_t seed) {
        std::vector<std::unique_ptr<sim::Process>> procs;
        for (ProcessId p = 0; p < n; ++p) {
          procs.push_back(core::FailStopConsensus::make(
              {n, k}, p % 2 == 0 ? Value::zero : Value::one));
        }
        sim::Simulation s(
            sim::SimConfig{.n = n, .seed = seed, .max_steps = 4'000'000},
            std::move(procs));
        const auto result = s.run();
        if (result.status == sim::RunStatus::all_decided) {
          ++m.decided;
          m.phases.add(static_cast<double>(s.metrics().max_phase));
        }
      });
}

}  // namespace

int main(int argc, char** argv) {
  std::cout << "E6: Figure 1 vs Ben-Or [BenO83], balanced inputs, crash "
               "model at k = floor((n-1)/2), " << kRuns << " seeds\n\n";
  Table table({"n", "k", "Fig1 phases(mean)", "Fig1 phases(max)",
               "BenOr rounds(mean)", "BenOr rounds(max)",
               "BenOr coin flips(mean)", "BenOr decided"});
  for (const std::uint32_t n : {4u, 6u, 8u, 10u, 12u, 14u}) {
    const std::uint32_t k = (n - 1) / 2;
    const Measured fig1 = run_figure1(n, k);
    const Measured benor = run_benor(n, k);
    table.row()
        .cell(static_cast<std::uint64_t>(n))
        .cell(static_cast<std::uint64_t>(k))
        .cell(fig1.phases.mean(), 2)
        .cell(fig1.phases.max(), 0)
        .cell(benor.phases.mean(), 2)
        .cell(benor.phases.max(), 0)
        .cell(benor.coin_flips.mean(), 1)
        .cell(std::to_string(benor.decided) + "/" + std::to_string(kRuns));
  }
  table.print(std::cout);

  std::cout << "\nMalicious-case resilience (conclusion): this paper "
               "tolerates floor((n-1)/3), Ben-Or floor((n-1)/5):\n";
  Table res({"n", "Bracha-Toueg k_max", "Ben-Or k_max"});
  for (const std::uint32_t n : {6u, 11u, 16u, 21u, 31u}) {
    res.row()
        .cell(static_cast<std::uint64_t>(n))
        .cell(static_cast<std::uint64_t>((n - 1) / 3))
        .cell(static_cast<std::uint64_t>((n - 1) / 5));
  }
  res.print(std::cout);
  std::cout << "\nExpected shape (paper): Figure 1's phase column stays "
               "flat as n grows; Ben-Or's round and coin-flip columns climb "
               "steeply from the balanced start (exponential expected time "
               "in the worst case); the resilience table shows the n/3 vs "
               "n/5 gap.\n";
  return bench::finish(meter, "e6_benor", argc, argv);
}
