// X3 (extension) — multivalued consensus built from the paper's binary
// protocol: cost of the slot sweep as the system grows and as Byzantine
// proposers occupy the early slots.
#include <cstdint>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "adversary/byzantine.hpp"
#include "bench_util.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "extensions/multivalued.hpp"
#include "runtime/parallel_series.hpp"
#include "sim/simulation.hpp"

namespace {

using namespace rcp;

const std::uint32_t kRuns = bench::env_runs(15);

bench::ThroughputMeter meter;

Bytes bytes_of(const std::string& s) {
  Bytes b;
  for (const char c : s) {
    b.push_back(static_cast<std::byte>(c));
  }
  return b;
}

struct Measured {
  RunningStats slots;
  RunningStats steps;
  std::uint32_t decided = 0;
  std::uint32_t agreed = 0;

  void merge(const Measured& other) {
    slots.merge(other.slots);
    steps.merge(other.steps);
    decided += other.decided;
    agreed += other.agreed;
  }
};

Measured run_series(std::uint32_t n, std::uint32_t k, std::uint32_t byz) {
  const bench::Stopwatch sw;
  Measured result_m = runtime::run_trials<Measured>(
      kRuns, 1,
      [n, k, byz](Measured& m, std::uint64_t, std::uint64_t seed) {
        std::vector<std::unique_ptr<sim::Process>> procs;
        std::vector<ext::MultiValuedConsensus*> raw;
        for (ProcessId p = 0; p < n; ++p) {
          if (p < byz) {
            procs.push_back(std::make_unique<adversary::SilentByzantine>());
            continue;
          }
          auto mv = ext::MultiValuedConsensus::make(
              {n, k}, bytes_of("cfg-" + std::to_string(p)));
          raw.push_back(mv.get());
          procs.push_back(std::move(mv));
        }
        sim::Simulation s(
            sim::SimConfig{.n = n, .seed = seed, .max_steps = 12'000'000},
            std::move(procs));
        for (ProcessId p = 0; p < byz; ++p) {
          s.mark_faulty(p);
        }
        const auto result = s.run();
        bool same = true;
        std::optional<Bytes> first;
        std::uint64_t max_slot = 0;
        for (auto* mv : raw) {
          if (!mv->decided_proposal().has_value()) {
            same = false;
            break;
          }
          if (first.has_value() && *first != *mv->decided_proposal()) {
            same = false;
          }
          first = mv->decided_proposal();
          max_slot = std::max<std::uint64_t>(max_slot, mv->phase());
        }
        if (result.status == sim::RunStatus::all_decided) {
          ++m.decided;
          m.slots.add(static_cast<double>(max_slot));
          m.steps.add(static_cast<double>(result.steps));
        }
        if (same) {
          ++m.agreed;
        }
      },
      bench::series_config());
  meter.note(kRuns, sw.seconds());
  return result_m;
}

}  // namespace

int main(int argc, char** argv) {
  std::cout << "X3: multivalued consensus (reliable proposals + Figure 2 "
               "slot sweep), " << kRuns << " seeds per row\n\n";
  Table table({"n", "k", "byz (silent, low slots)", "decided", "agreed",
               "slots swept(mean)", "steps(mean)"});
  struct Case {
    std::uint32_t n, k, byz;
  } cases[] = {{4, 1, 0}, {4, 1, 1}, {7, 2, 0}, {7, 2, 2},
               {10, 3, 0}, {10, 3, 3}};
  for (const auto& c : cases) {
    const Measured m = run_series(c.n, c.k, c.byz);
    table.row()
        .cell(static_cast<std::uint64_t>(c.n))
        .cell(static_cast<std::uint64_t>(c.k))
        .cell(static_cast<std::uint64_t>(c.byz))
        .cell(std::to_string(m.decided) + "/" + std::to_string(kRuns))
        .cell(std::to_string(m.agreed) + "/" + std::to_string(kRuns))
        .cell(m.slots.mean(), 2)
        .cell(m.steps.mean(), 0);
  }
  table.print(std::cout);
  std::cout << "\nReading: every run agrees on one byte string; the Byzantine "
               "rows place the silent proposers in the earliest slots, so "
               "the sweep pays roughly `byz` extra binary instances before "
               "a correct origin's slot wins.\n";
  return bench::finish(meter, "x3_multivalued", argc, argv);
}
