// E3 — Section 4.1: the fail-stop Markov analysis, equations (1)-(13).
//
// Regenerates, for a sweep of n:
//   * the exact expected absorption time from the balanced state n/2
//     (fundamental-matrix solve on the full (n+1)-state chain of eq. 1);
//   * a Monte-Carlo estimate of the same chain (cross-validation);
//   * the paper's collapsed 3-state bound, eq. 13, with l^2 = 1.5;
//   * the headline check: "the expected number of phases is less than 7".
// Also prints the collapsed matrix R (eq. 11) and the w_i profile.
#include <cstdint>
#include <iostream>

#include "analysis/collapsed_chain.hpp"
#include "analysis/failstop_chain.hpp"
#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "runtime/parallel_series.hpp"

namespace {

using namespace rcp;
using analysis::CollapsedChain;
using analysis::FailStopChain;

const std::uint32_t kMonteCarloRuns = bench::env_runs(20000);
constexpr std::uint64_t kMcBaseSeed = 2024;

bench::ThroughputMeter meter;

}  // namespace

int main(int argc, char** argv) {
  const double l = CollapsedChain::kPaperL;
  std::cout << "E3: Section 4.1 Markov analysis (k = n/3 fail-stop, "
               "majority variant), l^2 = 1.5\n\n";

  Table table({"n", "E[phases] exact", "E[phases] MC", "bound eq.13",
               "< 7 ?"});
  for (const unsigned n : {6u, 12u, 30u, 60u, 120u, 300u, 600u}) {
    const FailStopChain chain(n);
    // One MC series per n, sharded across the TrialPool; each trial walks
    // the chain with its own trial_seed-derived generator, so the estimate
    // is independent of thread count.
    const bench::Stopwatch sw;
    const RunningStats mc = runtime::run_trials<RunningStats>(
        kMonteCarloRuns, kMcBaseSeed + n,
        [&chain, n](RunningStats& acc, std::uint64_t, std::uint64_t seed) {
          Rng rng(seed);
          acc.add(static_cast<double>(
              chain.chain().simulate_hitting_time(n / 2, rng)));
        },
        bench::series_config());
    meter.note(kMonteCarloRuns, sw.seconds());
    const double bound = CollapsedChain::expected_absorption_closed_form(n, l);
    table.row()
        .cell(static_cast<std::uint64_t>(n))
        .cell(chain.expected_phases_from_balanced(), 4)
        .cell(mc.mean(), 4)
        .cell(bound, 4)
        .cell(bound < 7.0 ? "yes" : "NO");
  }
  table.print(std::cout);
  std::cout << "\nAsymptotic bound (2 Phi(l) + 1/2) / Phi(l) = "
            << format_double(CollapsedChain::asymptotic_bound(l), 4)
            << "  (paper: \"less than 7\")\n\n";

  // The collapsed matrix R of eq. 11, for one representative n.
  const unsigned n_show = 300;
  const analysis::Matrix r = CollapsedChain::r_matrix(n_show, l);
  std::cout << "Collapsed matrix R (eq. 11) at n = " << n_show << ":\n";
  Table rt({"state", "-> C", "-> BD", "-> AE"});
  const char* names[3] = {"C", "BD", "AE"};
  for (std::size_t i = 0; i < 3; ++i) {
    rt.row().cell(names[i]).cell(r.at(i, 0), 6).cell(r.at(i, 1), 6).cell(
        r.at(i, 2), 6);
  }
  rt.print(std::cout);
  std::cout << "Expected absorption from C: closed form (eq. 13) = "
            << format_double(
                   CollapsedChain::expected_absorption_closed_form(n_show, l), 6)
            << ", via N = (I-Q)^-1 = "
            << format_double(
                   CollapsedChain::expected_absorption_via_fundamental(n_show,
                                                                        l),
                   6)
            << "\n\n";

  // The per-state flip probability w_i (eq. 1), absorption times, and the
  // paper's "the consensus value is still likely to be equal to the
  // majority of the initial input values" as P[decide 1 | start state].
  const unsigned n_profile = 30;
  const FailStopChain profile(n_profile);
  std::cout << "w_i profile (eq. 1) at n = " << n_profile
            << " (absorbing: i < 10 or i > 20):\n";
  Table wt({"i", "w_i", "E[phases from i]", "P[decide 1 from i]"});
  for (unsigned i = 0; i <= n_profile; i += 3) {
    wt.row()
        .cell(static_cast<std::uint64_t>(i))
        .cell(profile.w(i), 5)
        .cell(profile.expected_phases_from(i), 4)
        .cell(profile.probability_decide_one_from(i), 4);
  }
  wt.print(std::cout);
  std::cout << "\nExpected shape (paper): exact and MC columns agree; every "
               "bound column is below 7; exact values sit well below the "
               "bound (the collapse only slows the chain); the last column "
               "shows the initial majority is very likely to win (and the "
               "tie-to-0 rule biases the exact centre slightly below "
               "1/2).\n";
  return bench::finish(meter, "e3_markov_failstop", argc, argv);
}
