// E4 — Section 4.2: the malicious-case Markov analysis under the balancing
// attack, k <= n/5 with k = l sqrt(n) / 2.
//
// Regenerates, for l in {1, 2} and a sweep of n:
//   * the exact expected absorption time from the balanced state;
//   * a Monte-Carlo estimate (cross-validation);
//   * the paper's bound 1 / (2 Phi(l)) (eq. 2 of Section 4.2);
//   * the headline: for fixed l the expected time is constant in n
//     ("for k = o(sqrt n), the expected absorption time is constant").
#include <cstdint>
#include <iostream>

#include "analysis/malicious_chain.hpp"
#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "runtime/parallel_series.hpp"

namespace {

using namespace rcp;
using analysis::MaliciousChain;

const std::uint32_t kMonteCarloRuns = bench::env_runs(20000);
constexpr std::uint64_t kMcBaseSeed = 77;

bench::ThroughputMeter meter;

struct Case {
  unsigned n;
  unsigned k;
};

}  // namespace

int main(int argc, char** argv) {
  std::cout << "E4: Section 4.2 Markov analysis (balancing attack on the "
               "malicious protocol), k = l*sqrt(n)/2\n\n";

  // k = l sqrt(n)/2 exactly, with n - k even (integral balanced state).
  const Case l1[] = {{64, 4}, {144, 6}, {256, 8}, {400, 10}, {576, 12}};
  const Case l2[] = {{64, 8}, {144, 12}, {256, 16}, {400, 20}, {576, 24}};

  for (const auto& [label, cases] :
       {std::pair<const char*, const Case*>{"l = 1", l1},
        std::pair<const char*, const Case*>{"l = 2", l2}}) {
    Table table({"n", "k", "l", "k<=n/5?", "E[phases] exact", "E[phases] MC",
                 "bound 1/(2*Phi(l))"});
    for (int i = 0; i < 5; ++i) {
      const Case c = cases[i];
      const MaliciousChain chain(c.n, c.k);
      const unsigned balanced = (c.n - c.k) / 2;
      const bench::Stopwatch sw;
      const RunningStats mc = runtime::run_trials<RunningStats>(
          kMonteCarloRuns, kMcBaseSeed + c.n * 64 + c.k,
          [&chain, balanced](RunningStats& acc, std::uint64_t,
                             std::uint64_t seed) {
            Rng rng(seed);
            acc.add(static_cast<double>(
                chain.chain().simulate_hitting_time(balanced, rng)));
          },
          bench::series_config());
      meter.note(kMonteCarloRuns, sw.seconds());
      table.row()
          .cell(static_cast<std::uint64_t>(c.n))
          .cell(static_cast<std::uint64_t>(c.k))
          .cell(chain.effective_l(), 2)
          .cell(5 * c.k <= c.n ? "yes" : "no")
          .cell(chain.expected_phases_from_balanced(), 4)
          .cell(mc.mean(), 4)
          .cell(MaliciousChain::paper_bound(chain.effective_l()), 4);
    }
    std::cout << label << ":\n";
    table.print(std::cout);
    std::cout << "\n";
  }
  std::cout << "Expected shape (paper): within each block the exact column "
               "is flat in n (constant expected time for k = o(sqrt n)) and "
               "below the 1/(2*Phi(l)) bound; the l = 2 block is slower "
               "than l = 1 (stronger adversary).\n";
  return bench::finish(meter, "e4_markov_malicious", argc, argv);
}
