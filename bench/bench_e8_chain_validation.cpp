// E8 — validation of the Section 4.1 model against the actual protocol.
//
// The analysis models one phase of the majority variant (k = n/3, no
// actual failures) as: every process samples n-k of the n phase messages,
// flips to 1 with probability w_i (eq. 1), giving next state ~
// Binomial(n, w_i). Here we run the *real* asynchronous protocol and
// measure:
//   (a) the empirical one-phase transition  E[state after phase 0]  from
//       each starting state i, against the model's n * w_i;
//   (b) end-to-end phases-to-decision from the balanced start, against the
//       chain's expected absorption time.
// Deviations quantify what the paper's independence approximation (shared
// samples across processes are treated as independent) costs.
#include <cstdint>
#include <iostream>
#include <memory>
#include <vector>

#include "analysis/failstop_chain.hpp"
#include "bench_util.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/majority.hpp"
#include "runtime/parallel_series.hpp"
#include "sim/simulation.hpp"

namespace {

using namespace rcp;

constexpr unsigned kN = 12;       // divisible by 6; chain k = n/3 = 4
constexpr unsigned kK = kN / 3;   // beyond floor((n-1)/3): use make_unchecked
const std::uint32_t kRuns = bench::env_runs(200);

bench::ThroughputMeter meter;

/// Runs the protocol from `ones` initial 1s until every process finishes
/// phase 0, and returns the number of processes whose phase-1 value is 1.
unsigned one_phase_transition(unsigned ones, std::uint64_t seed) {
  std::vector<std::unique_ptr<sim::Process>> procs;
  std::vector<core::MajorityConsensus*> raw;
  for (ProcessId p = 0; p < kN; ++p) {
    auto m = core::MajorityConsensus::make_unchecked(
        {kN, kK}, p < ones ? Value::one : Value::zero);
    raw.push_back(m.get());
    procs.push_back(std::move(m));
  }
  sim::Simulation s(
      sim::SimConfig{.n = kN, .seed = seed, .max_steps = 1'000'000},
      std::move(procs));
  std::vector<std::optional<Value>> snap(kN);
  s.start();
  auto all_snapped = [&] {
    for (const auto& v : snap) {
      if (!v.has_value()) {
        return false;
      }
    }
    return true;
  };
  while (!all_snapped() && s.step()) {
    for (ProcessId p = 0; p < kN; ++p) {
      if (!snap[p].has_value() && raw[p]->phase() >= 1) {
        snap[p] = raw[p]->value();
      }
    }
  }
  unsigned next_ones = 0;
  for (ProcessId p = 0; p < kN; ++p) {
    if (snap[p] == Value::one) {
      ++next_ones;
    }
  }
  return next_ones;
}

}  // namespace

int main(int argc, char** argv) {
  std::cout << "E8: Section 4.1 model vs the real asynchronous protocol, "
               "n = " << kN << ", k = n/3 = " << kK << ", " << kRuns
            << " runs per state\n\n";
  const analysis::FailStopChain chain(kN);

  std::cout << "(a) one-phase transition law:\n";
  Table table({"start ones i", "w_i", "model E[next] = n*w_i",
               "measured E[next]", "measured sd"});
  for (unsigned i = 0; i <= kN; i += 2) {
    const bench::Stopwatch sw;
    const RunningStats measured = runtime::run_trials<RunningStats>(
        kRuns, 1'000 + i,
        [i](RunningStats& acc, std::uint64_t, std::uint64_t seed) {
          acc.add(static_cast<double>(one_phase_transition(i, seed)));
        },
        bench::series_config());
    meter.note(kRuns, sw.seconds());
    table.row()
        .cell(static_cast<std::uint64_t>(i))
        .cell(chain.w(i), 4)
        .cell(static_cast<double>(kN) * chain.w(i), 3)
        .cell(measured.mean(), 3)
        .cell(measured.stddev(), 3);
  }
  table.print(std::cout);

  // End-to-end decisions need the *legal* k = floor((n-1)/3): at k = n/3
  // exactly, the decision threshold > (n+k)/2 exceeds the quorum n-k and
  // the protocol can never decide (which is why the paper's chain treats
  // "decision inevitable" states as absorbed instead).
  const std::uint32_t k_legal = (kN - 1) / 3;
  std::cout << "\n(b) end-to-end phases to decision from the balanced "
               "start (protocol at legal k = "
            << k_legal << ") vs chain absorption (k = n/3 model):\n";
  struct EndToEnd {
    RunningStats phases;
    std::uint32_t decided = 0;

    void merge(const EndToEnd& other) {
      phases.merge(other.phases);
      decided += other.decided;
    }
  };
  const bench::Stopwatch sw;
  const EndToEnd e2e = runtime::run_trials<EndToEnd>(
      kRuns, 5'000,
      [k_legal](EndToEnd& acc, std::uint64_t, std::uint64_t seed) {
        std::vector<std::unique_ptr<sim::Process>> procs;
        for (ProcessId p = 0; p < kN; ++p) {
          procs.push_back(core::MajorityConsensus::make(
              {kN, k_legal}, p < kN / 2 ? Value::one : Value::zero));
        }
        sim::Simulation s(
            sim::SimConfig{.n = kN, .seed = seed, .max_steps = 2'000'000},
            std::move(procs));
        const auto result = s.run();
        if (result.status == sim::RunStatus::all_decided) {
          ++acc.decided;
          acc.phases.add(static_cast<double>(s.metrics().max_phase));
        }
      },
      bench::series_config());
  meter.note(kRuns, sw.seconds());
  const RunningStats& end_to_end = e2e.phases;
  const std::uint32_t decided = e2e.decided;
  Table summary({"quantity", "value"});
  summary.row().cell("chain E[phases to absorption]").cell(
      chain.expected_phases_from_balanced(), 3);
  summary.row().cell("protocol phases to all-decided (mean)").cell(
      end_to_end.mean(), 3);
  summary.row().cell("protocol phases to all-decided (max)").cell(
      end_to_end.max(), 0);
  summary.row().cell("runs decided").cell(
      std::to_string(decided) + "/" + std::to_string(kRuns));
  summary.print(std::cout);
  std::cout
      << "\nExpected shape (paper): column (a) model vs measured means track "
         "each other across states (the binomial/hypergeometric law is a "
         "good fit); (b) the protocol needs a few more phases than chain "
         "absorption, since absorption marks \"decision inevitable\", after "
         "which the protocol still takes ~2 phases to actually decide.\n";
  return bench::finish(meter, "e8_chain_validation", argc, argv);
}
