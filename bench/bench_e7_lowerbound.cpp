// E7 — Theorems 1 and 3: tightness of the resilience bounds, as witness
// executions. Each row runs a protocol either beyond or at its bound under
// an adversarial (but legal) schedule and reports which of the paper's
// three properties — consistency, convergence — survived.
#include <cstdint>
#include <iostream>
#include <memory>
#include <vector>

#include "adversary/byzantine.hpp"
#include "adversary/delivery.hpp"
#include "adversary/scenario.hpp"
#include "baselines/naive_quorum.hpp"
#include "bench_util.hpp"
#include "common/table.hpp"
#include "core/majority.hpp"
#include "runtime/parallel_series.hpp"
#include "sim/simulation.hpp"

namespace {

using namespace rcp;
using adversary::PartitionDelivery;
using adversary::ProtocolKind;
using adversary::Scenario;

const std::uint32_t kRuns = bench::env_runs(20);
constexpr std::uint64_t kBaseSeed = 1;

bench::ThroughputMeter meter;

struct Outcome {
  std::uint32_t decided_all = 0;
  std::uint32_t agreed = 0;

  void merge(const Outcome& other) {
    decided_all += other.decided_all;
    agreed += other.agreed;
  }
};

/// Shards the kRuns witness executions across the trial pool.
template <typename TrialFn>
Outcome outcome_series(TrialFn&& fn) {
  const bench::Stopwatch sw;
  Outcome o = runtime::run_trials<Outcome>(kRuns, kBaseSeed,
                                           std::forward<TrialFn>(fn),
                                           bench::series_config());
  meter.note(kRuns, sw.seconds());
  return o;
}

void report(Table& table, const char* protocol, const char* regime,
            const char* schedule, const Outcome& o) {
  const bool consistency = o.agreed == kRuns;
  const bool convergence = o.decided_all == kRuns;
  table.row()
      .cell(protocol)
      .cell(regime)
      .cell(schedule)
      .cell(std::to_string(o.agreed) + "/" + std::to_string(kRuns))
      .cell(std::to_string(o.decided_all) + "/" + std::to_string(kRuns))
      .cell(consistency ? (convergence ? "both hold" : "CONVERGENCE lost")
                        : "CONSISTENCY lost");
}

Outcome partitioned_scenario(ProtocolKind protocol, std::uint32_t n,
                             std::uint32_t k, bool unchecked,
                             std::uint64_t heal_at_step = UINT64_MAX) {
  return outcome_series([=](Outcome& o, std::uint64_t, std::uint64_t seed) {
    Scenario s;
    s.protocol = protocol;
    s.params = {n, k};
    s.unchecked = unchecked;
    s.inputs = std::vector<Value>(n, Value::zero);
    for (ProcessId p = n / 2; p < n; ++p) {
      s.inputs[p] = Value::one;
    }
    s.seed = seed;
    s.max_steps = 400'000;
    auto simulation = adversary::build(
        s, PartitionDelivery::split_at(n, n / 2, heal_at_step));
    const auto result = simulation->run();
    if (result.status == sim::RunStatus::all_decided) {
      ++o.decided_all;
    }
    if (simulation->agreement_holds()) {
      ++o.agreed;
    }
  });
}

Outcome naive_partitioned(std::uint32_t n, std::uint32_t k) {
  return outcome_series([=](Outcome& o, std::uint64_t, std::uint64_t seed) {
    std::vector<std::unique_ptr<sim::Process>> procs;
    for (ProcessId p = 0; p < n; ++p) {
      procs.push_back(baselines::NaiveQuorumVote::make(
          {n, k}, p < n / 2 ? Value::zero : Value::one));
    }
    sim::Simulation s(
        sim::SimConfig{.n = n, .seed = seed, .max_steps = 100'000},
        std::move(procs), PartitionDelivery::split_at(n, n / 2));
    const auto result = s.run();
    if (result.status == sim::RunStatus::all_decided) {
      ++o.decided_all;
    }
    if (s.agreement_holds()) {
      ++o.agreed;
    }
  });
}

Outcome equivocator_vs_majority(std::uint32_t n, std::uint32_t k) {
  return outcome_series([=](Outcome& o, std::uint64_t, std::uint64_t seed) {
    std::vector<std::unique_ptr<sim::Process>> procs;
    for (ProcessId p = 0; p < n; ++p) {
      if (p == 1) {
        procs.push_back(std::make_unique<adversary::SplitVoiceByzantine>(
            core::ConsensusParams{n, k}, static_cast<ProcessId>(n / 2)));
      } else {
        // All correct processes but the last start with 0; the equivocator
        // feeds the last one enough 1s to sometimes split the system.
        procs.push_back(core::MajorityConsensus::make_unchecked(
            {n, k}, p + 1 < n ? Value::zero : Value::one));
      }
    }
    sim::Simulation s(
        sim::SimConfig{.n = n, .seed = seed, .max_steps = 1'000'000},
        std::move(procs));
    s.mark_faulty(1);
    const auto result = s.run();
    if (result.status == sim::RunStatus::all_decided) {
      ++o.decided_all;
    }
    if (s.agreement_holds()) {
      ++o.agreed;
    }
  });
}

}  // namespace

int main(int argc, char** argv) {
  std::cout << "E7: tightness of the resilience bounds (Theorems 1 and 3), "
            << kRuns << " seeds per row\n\n";
  Table table({"protocol", "regime", "schedule", "agreed", "all decided",
               "verdict"});

  // Theorem 1 family: fail-stop, half/half partition (a legal asynchronous
  // schedule: cross-half messages are merely slow).
  report(table, "Fig 1", "k = n/2 (beyond)", "partition n=8",
         partitioned_scenario(ProtocolKind::fail_stop, 8, 4, true));
  report(table, "Fig 1", "k = (n-1)/2 (at bound)", "partition, heals @5k",
         partitioned_scenario(ProtocolKind::fail_stop, 8, 3, false, 5'000));
  report(table, "naive quorum vote", "k = n/2 (beyond)", "partition n=8",
         naive_partitioned(8, 4));

  // Theorem 3 family: malicious.
  report(table, "Fig 2", "k > (n-1)/3 (beyond)", "partition n=9 (5|4)",
         partitioned_scenario(ProtocolKind::malicious, 9, 3, true));
  report(table, "majority variant (S4.1)", "k = (n-1)/3, 1 equivocator",
         "uniform", equivocator_vs_majority(4, 1));

  table.print(std::cout);
  std::cout
      << "\nReading (paper): beyond the bounds no protocol can keep all "
         "three properties. Figure 1 and Figure 2 sacrifice convergence "
         "(their quorum thresholds become unreachable); the naive ablation "
         "without witness machinery and the echo-less majority variant "
         "under equivocation sacrifice consistency instead — which is "
         "exactly why Figures 1 and 2 carry the witness and echo machinery. "
         "At the bound (control rows), consistency always holds.\n";
  return bench::finish(meter, "e7_lowerbound", argc, argv);
}
