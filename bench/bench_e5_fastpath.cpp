// E5 — the fast-path notes at the ends of Sections 2.3 and 3.3:
//   * fail-stop: unanimous input decides within ~2 phases; more than
//     (n+k)/2 common inputs decide that value "in just three phases";
//   * malicious: unanimous decides "in just two phases"; > (n+k)/2 common
//     correct inputs decide that value in two phases;
//   * balanced inputs still decide quickly, but the value is "not known a
//     priori" — we report the empirical split of decisions.
#include <cstdint>
#include <iostream>

#include "adversary/scenario.hpp"
#include "bench_util.hpp"
#include "common/table.hpp"

namespace {

using namespace rcp;
using adversary::ProtocolKind;
using adversary::Scenario;

const std::uint32_t kRuns = bench::env_runs(50);

bench::ThroughputMeter meter;

void sweep(ProtocolKind protocol, std::uint32_t n, std::uint32_t k) {
  Table table({"inputs (ones/n)", "decided", "agreed", "decided 1",
               "phases(mean)", "phases(max)"});
  const std::uint32_t strong = (n + k) / 2 + 1;  // > (n+k)/2
  for (const std::uint32_t ones : {0u, n / 2, strong, n}) {
    Scenario s;
    s.protocol = protocol;
    s.params = {n, k};
    s.inputs = adversary::inputs_with_ones(n, ones);
    const auto r = bench::run_series(s, kRuns);
    meter.note(r);
    table.row()
        .cell(std::to_string(ones) + "/" + std::to_string(n))
        .cell(std::to_string(r.decided) + "/" + std::to_string(r.runs))
        .cell(std::to_string(r.agreed) + "/" + std::to_string(r.runs))
        .cell(std::to_string(r.decided_one) + "/" + std::to_string(r.runs))
        .cell(r.phases.mean(), 2)
        .cell(r.phases.max(), 0);
  }
  std::cout << to_string(protocol) << ", n = " << n << ", k = " << k
            << " (strong majority threshold: > " << (n + k) / 2.0 << "):\n";
  table.print(std::cout);
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::cout << "E5: fast-path phase counts (Sections 2.3 / 3.3 closing "
               "notes), " << kRuns << " seeds per row\n\n";
  sweep(ProtocolKind::fail_stop, 9, 2);
  sweep(ProtocolKind::malicious, 10, 2);
  sweep(ProtocolKind::majority, 10, 3);
  std::cout << "Expected shape (paper): unanimous rows (0/n and n/n) decide "
               "their input within ~2-3 phases; strong-majority rows decide "
               "1 every run in <= 3 phases; balanced rows agree every run "
               "but split between 0 and 1 across seeds.\n";
  return bench::finish(meter, "e5_fastpath", argc, argv);
}
