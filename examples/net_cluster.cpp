// Loopback cluster driver: run a Bracha–Toueg protocol over real TCP.
//
// Every node is a full net::Node — framed sockets, identity handshake,
// reliable delivery, reconnect — hosting the same sim::Process the
// simulator runs. The default mode runs all n nodes as threads in this
// process on ephemeral loopback ports; --fork runs each node as its own
// OS process on base_port + id (the closest thing to a deployment the
// loopback allows).
//
//   $ ./net_cluster --protocol fig1 --n 5 --crash 4@1
//   $ ./net_cluster --protocol fig2 --n 7 --adversary silent --byz 1
//         --disconnect 0:1@5 --drop 0.02 --json run.json
//   $ ./net_cluster --protocol fig2 --n 7 --fork --base-port 19400
//   (each invocation on one line)
//
// Options:
//   --protocol fig1|fig2|benor|bracha87   (default fig2)
//   --n N --k K             (default n=7, k = protocol's maximum)
//   --ones M                initial 1-inputs (default n/2)
//   --adversary none|silent|equivocator|balancer|babbler  (default none)
//   --byz B                 byzantine node count (default k if adversary set)
//   --crash ID@PHASE        fail-stop ID when its phase reaches PHASE
//   --disconnect A:B@D      node A force-closes its link to B after A has
//                           delivered D messages (reconnect heals it)
//   --drop P                drop-injection probability per transmission
//   --delay MIN:MAX         uniform per-frame delay in milliseconds
//   --seed S                (default 1)
//   --timeout-ms T          give up after T ms (default 30000)
//   --loop-threads T        drive all n nodes from T shared event-loop
//                           threads (default 0 = one thread per node)
//   --backend auto|poll|epoll   readiness backend (default auto)
//   --json PATH             write the rcp-net-v1 report
//   --sweep N1,N2,...       benchmark sweep: run the protocol at each n,
//                           thread-per-node and shared-loop side by side,
//                           and write an rcp-net-sweep-v1 report to --json
//   --fork --base-port P    one OS process per node on ports P..P+n-1
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "adversary/byzantine.hpp"
#include "adversary/scenario.hpp"
#include "baselines/benor.hpp"
#include "common/table.hpp"
#include "core/failstop.hpp"
#include "core/malicious.hpp"
#include "core/params.hpp"
#include "extensions/bracha87.hpp"
#include "net/cluster.hpp"
#include "net/report.hpp"

namespace {

using namespace rcp;

struct Options {
  std::string protocol = "fig2";
  std::uint32_t n = 7;
  std::optional<std::uint32_t> k;
  std::optional<std::uint32_t> ones;
  std::string adversary = "none";
  std::optional<std::uint32_t> byz_count;
  std::vector<std::pair<ProcessId, Phase>> crashes;
  std::vector<std::pair<ProcessId, net::DisconnectEvent>> disconnects;
  double drop = 0.0;
  std::uint32_t delay_min = 0;
  std::uint32_t delay_max = 0;
  std::uint64_t seed = 1;
  std::uint32_t timeout_ms = 30000;
  std::string json_path;
  bool fork_mode = false;
  std::uint16_t base_port = 0;
  std::uint32_t loop_threads = 0;
  net::Reactor::Backend backend = net::Reactor::Backend::automatic;
  std::vector<std::uint32_t> sweep_ns;
};

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0
      << " [--protocol fig1|fig2|benor|bracha87] [--n N] [--k K] [--ones M]\n"
         "       [--adversary none|silent|equivocator|balancer|babbler]"
         " [--byz B]\n"
         "       [--crash ID@PHASE]... [--disconnect A:B@D]...\n"
         "       [--drop P] [--delay MIN:MAX] [--seed S] [--timeout-ms T]\n"
         "       [--loop-threads T] [--backend auto|poll|epoll]\n"
         "       [--json PATH] [--sweep N1,N2,...] [--fork --base-port P]\n";
  return 2;
}

/// Parses "A@B" into two integers; false on malformed input.
bool parse_at(const std::string& s, std::uint64_t& a, std::uint64_t& b) {
  const auto at = s.find('@');
  if (at == std::string::npos || at == 0 || at + 1 >= s.size()) {
    return false;
  }
  try {
    a = std::stoull(s.substr(0, at));
    b = std::stoull(s.substr(at + 1));
  } catch (...) {
    return false;
  }
  return true;
}

std::optional<Options> parse(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      return ++i < argc ? argv[i] : nullptr;
    };
    try {
      if (flag == "--protocol") {
        const char* v = next();
        if (v == nullptr) return std::nullopt;
        opt.protocol = v;
        if (opt.protocol != "fig1" && opt.protocol != "fig2" &&
            opt.protocol != "benor" && opt.protocol != "bracha87") {
          return std::nullopt;
        }
      } else if (flag == "--n") {
        const char* v = next();
        if (v == nullptr) return std::nullopt;
        opt.n = static_cast<std::uint32_t>(std::stoul(v));
      } else if (flag == "--k") {
        const char* v = next();
        if (v == nullptr) return std::nullopt;
        opt.k = static_cast<std::uint32_t>(std::stoul(v));
      } else if (flag == "--ones") {
        const char* v = next();
        if (v == nullptr) return std::nullopt;
        opt.ones = static_cast<std::uint32_t>(std::stoul(v));
      } else if (flag == "--adversary") {
        const char* v = next();
        if (v == nullptr) return std::nullopt;
        opt.adversary = v;
        if (opt.adversary != "none" && opt.adversary != "silent" &&
            opt.adversary != "equivocator" && opt.adversary != "balancer" &&
            opt.adversary != "babbler") {
          return std::nullopt;
        }
      } else if (flag == "--byz") {
        const char* v = next();
        if (v == nullptr) return std::nullopt;
        opt.byz_count = static_cast<std::uint32_t>(std::stoul(v));
      } else if (flag == "--crash") {
        const char* v = next();
        std::uint64_t id = 0;
        std::uint64_t phase = 0;
        if (v == nullptr || !parse_at(v, id, phase)) return std::nullopt;
        opt.crashes.emplace_back(static_cast<ProcessId>(id), phase);
      } else if (flag == "--disconnect") {
        const char* v = next();
        if (v == nullptr) return std::nullopt;
        const std::string s = v;
        const auto colon = s.find(':');
        if (colon == std::string::npos) return std::nullopt;
        std::uint64_t peer = 0;
        std::uint64_t after = 0;
        if (!parse_at(s.substr(colon + 1), peer, after)) return std::nullopt;
        const auto node = static_cast<ProcessId>(
            std::stoul(s.substr(0, colon)));
        opt.disconnects.emplace_back(
            node, net::DisconnectEvent{static_cast<ProcessId>(peer), after});
      } else if (flag == "--drop") {
        const char* v = next();
        if (v == nullptr) return std::nullopt;
        opt.drop = std::stod(v);
      } else if (flag == "--delay") {
        const char* v = next();
        if (v == nullptr) return std::nullopt;
        const std::string s = v;
        const auto colon = s.find(':');
        if (colon == std::string::npos) return std::nullopt;
        opt.delay_min =
            static_cast<std::uint32_t>(std::stoul(s.substr(0, colon)));
        opt.delay_max =
            static_cast<std::uint32_t>(std::stoul(s.substr(colon + 1)));
      } else if (flag == "--seed") {
        const char* v = next();
        if (v == nullptr) return std::nullopt;
        opt.seed = std::stoull(v);
      } else if (flag == "--timeout-ms") {
        const char* v = next();
        if (v == nullptr) return std::nullopt;
        opt.timeout_ms = static_cast<std::uint32_t>(std::stoul(v));
      } else if (flag == "--json") {
        const char* v = next();
        if (v == nullptr) return std::nullopt;
        opt.json_path = v;
      } else if (flag == "--loop-threads") {
        const char* v = next();
        if (v == nullptr) return std::nullopt;
        opt.loop_threads = static_cast<std::uint32_t>(std::stoul(v));
      } else if (flag == "--backend") {
        const char* v = next();
        if (v == nullptr) return std::nullopt;
        const std::string s = v;
        if (s == "auto") {
          opt.backend = net::Reactor::Backend::automatic;
        } else if (s == "poll") {
          opt.backend = net::Reactor::Backend::poll;
        } else if (s == "epoll") {
          opt.backend = net::Reactor::Backend::epoll;
        } else {
          return std::nullopt;
        }
      } else if (flag == "--sweep") {
        const char* v = next();
        if (v == nullptr) return std::nullopt;
        std::string s = v;
        for (std::size_t pos = 0; pos < s.size();) {
          const auto comma = s.find(',', pos);
          const auto end = comma == std::string::npos ? s.size() : comma;
          opt.sweep_ns.push_back(
              static_cast<std::uint32_t>(std::stoul(s.substr(pos, end - pos))));
          pos = end + 1;
        }
        if (opt.sweep_ns.empty()) return std::nullopt;
      } else if (flag == "--fork") {
        opt.fork_mode = true;
      } else if (flag == "--base-port") {
        const char* v = next();
        if (v == nullptr) return std::nullopt;
        opt.base_port = static_cast<std::uint16_t>(std::stoul(v));
      } else {
        return std::nullopt;
      }
    } catch (...) {
      return std::nullopt;
    }
  }
  if (opt.fork_mode && opt.base_port == 0) {
    std::cerr << "--fork needs --base-port (forked nodes cannot exchange "
                 "ephemeral ports)\n";
    return std::nullopt;
  }
  return opt;
}

/// The resolved run plan shared by the thread and fork modes.
struct Plan {
  std::uint32_t k = 0;
  std::vector<Value> inputs;
  std::vector<ProcessId> byzantine_ids;
};

Plan resolve_plan(const Options& opt) {
  Plan plan;
  const core::FaultModel model =
      (opt.protocol == "fig1" ||
       (opt.protocol == "benor" && opt.adversary == "none"))
          ? core::FaultModel::fail_stop
          : core::FaultModel::malicious;
  plan.k = opt.k.value_or(core::max_resilience(model, opt.n));
  plan.inputs =
      adversary::inputs_with_ones(opt.n, opt.ones.value_or(opt.n / 2));
  if (opt.adversary != "none") {
    const std::uint32_t count =
        std::min(opt.byz_count.value_or(plan.k), opt.n);
    for (std::uint32_t b = 0; b < count; ++b) {
      plan.byzantine_ids.push_back(
          static_cast<ProcessId>(count > 0 ? b * opt.n / count : b));
    }
  }
  return plan;
}

std::unique_ptr<sim::Process> make_process(const Options& opt,
                                           const Plan& plan, ProcessId id) {
  const core::ConsensusParams params{opt.n, plan.k};
  for (const ProcessId b : plan.byzantine_ids) {
    if (b == id) {
      if (opt.adversary == "silent") {
        return std::make_unique<adversary::SilentByzantine>();
      }
      if (opt.adversary == "equivocator") {
        return std::make_unique<adversary::EquivocatorByzantine>(params);
      }
      if (opt.adversary == "balancer") {
        return std::make_unique<adversary::BalancerByzantine>(params);
      }
      return std::make_unique<adversary::BabblerByzantine>(params);
    }
  }
  const Value init = plan.inputs[id];
  if (opt.protocol == "fig1") {
    return core::FailStopConsensus::make(params, init);
  }
  if (opt.protocol == "benor") {
    const auto variant = opt.adversary == "none"
                             ? baselines::BenOrVariant::crash
                             : baselines::BenOrVariant::byzantine;
    return baselines::BenOrConsensus::make(params, variant, init);
  }
  if (opt.protocol == "bracha87") {
    return ext::Bracha87::make(params, init);
  }
  return core::MaliciousConsensus::make(params, init);
}

net::ClusterConfig cluster_config(const Options& opt, const Plan& plan) {
  net::ClusterConfig cfg;
  cfg.n = opt.n;
  cfg.seed = opt.seed;
  cfg.base_port = opt.fork_mode ? opt.base_port : std::uint16_t{0};
  cfg.link_faults.drop_probability = opt.drop;
  cfg.link_faults.delay_min_ms = opt.delay_min;
  cfg.link_faults.delay_max_ms = opt.delay_max;
  cfg.disconnects = opt.disconnects;
  cfg.crashes = opt.crashes;
  cfg.arbitrary_faulty = plan.byzantine_ids;
  cfg.timeout_ms = opt.timeout_ms;
  cfg.loop_threads = opt.loop_threads;
  cfg.backend = opt.backend;
  return cfg;
}

net::LatencyHistogram merged_latency(const net::ClusterResult& result) {
  net::LatencyHistogram merged;
  for (const net::NodeOutcome& node : result.nodes) {
    merged.merge(node.stats.latency);
  }
  return merged;
}

int report_thread_mode(const Options& opt, const Plan& plan,
                       const net::ClusterConfig& cfg,
                       const net::ClusterResult& result) {
  std::cout << "protocol : " << opt.protocol << "  n=" << opt.n
            << " k=" << plan.k << " seed=" << opt.seed
            << " transport=tcp-loopback";
  if (opt.loop_threads > 0) {
    std::cout << " loop-threads=" << opt.loop_threads;
  } else {
    std::cout << " thread-per-node";
  }
  std::cout << "\n";
  Table table({"node", "role", "decision", "phase", "delivered", "sent",
               "reconnects", "retransmits"});
  for (const net::NodeOutcome& node : result.nodes) {
    std::uint64_t reconnects = 0;
    std::uint64_t retransmits = 0;
    for (const net::PeerCounters& pc : node.stats.peers) {
      reconnects += pc.reconnects;
      retransmits += pc.retransmits;
    }
    const char* role = node.correct ? "correct"
                       : node.crashed ? "crashed"
                                      : "byzantine";
    table.row()
        .cell(static_cast<std::uint64_t>(node.id))
        .cell(role)
        .cell(node.decision.has_value()
                  ? std::to_string(value_index(*node.decision))
                  : std::string("-"))
        .cell(static_cast<std::uint64_t>(node.phase))
        .cell(node.stats.msgs_delivered)
        .cell(node.stats.msgs_sent)
        .cell(reconnects)
        .cell(retransmits);
  }
  table.print(std::cout);

  std::uint64_t decided = 0;
  for (const net::NodeOutcome& node : result.nodes) {
    if (node.decision.has_value()) {
      ++decided;
    }
  }
  const double elapsed =
      result.elapsed_seconds > 0.0 ? result.elapsed_seconds : 1e-9;
  std::cout << "decided  : " << (result.all_correct_decided
                                     ? "all correct nodes"
                                     : result.timed_out ? "TIMEOUT"
                                                        : "INCOMPLETE")
            << "\nagreement: "
            << (result.agreement ? "holds" : "VIOLATED");
  if (result.value.has_value()) {
    std::cout << " (value " << value_index(*result.value) << ")";
  }
  std::cout << "\nelapsed  : " << format_double(result.elapsed_seconds, 3)
            << "s  msgs/s=" << format_double(
                   static_cast<double>(result.total_delivered) / elapsed, 1)
            << "  decisions/s=" << format_double(
                   static_cast<double>(decided) / elapsed, 1)
            << "\n";
  const net::LatencyHistogram lat = merged_latency(result);
  if (lat.count() > 0) {
    std::cout << "latency  : p50=" << format_double(lat.quantile_ms(0.50), 3)
              << "ms p99=" << format_double(lat.quantile_ms(0.99), 3)
              << "ms p999=" << format_double(lat.quantile_ms(0.999), 3)
              << "ms (" << lat.count() << " frames)\n";
  }
  for (const net::NodeOutcome& node : result.nodes) {
    if (!node.error.empty()) {
      std::cout << "node " << node.id << " ERROR: " << node.error << "\n";
    }
  }

  if (!opt.json_path.empty()) {
    std::ofstream out(opt.json_path);
    if (!out) {
      std::cerr << "error: cannot open " << opt.json_path
                << " for writing\n";
      return 1;
    }
    bench::JsonWriter j(out);
    net::write_cluster_report(j, opt.protocol, cfg, result);
    out << "\n";
    std::cout << "[json] wrote " << opt.json_path << "\n";
  }
  return result.success() ? 0 : 1;
}

/// One sweep cell: the protocol at one n under one threading model.
struct SweepRun {
  std::string label;
  std::uint32_t n = 0;
  std::uint32_t loop_threads = 0;
  bool ok = false;
  double elapsed_seconds = 0.0;
  double msgs_per_sec = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double p999_ms = 0.0;
};

/// Runs the protocol at every requested n, thread-per-node and shared-loop
/// side by side, and reports throughput + tail latency per cell. The
/// labels ({protocol}_n{N}_tpn / _shared{T}) are what BENCH_BASELINE.json
/// tracks and tools/check_bench_regression.py --net gates on.
int run_sweep(const Options& opt) {
  const std::uint32_t shared_threads =
      opt.loop_threads > 0 ? opt.loop_threads : 4;
  std::vector<SweepRun> runs;
  for (const std::uint32_t n : opt.sweep_ns) {
    for (const std::uint32_t threads : {0u, shared_threads}) {
      Options run_opt = opt;
      run_opt.n = n;
      run_opt.loop_threads = threads;
      run_opt.sweep_ns.clear();
      const Plan plan = resolve_plan(run_opt);
      const net::ClusterConfig cfg = cluster_config(run_opt, plan);
      net::Cluster cluster(cfg, [&](ProcessId id) {
        return make_process(run_opt, plan, id);
      });
      const net::ClusterResult result = cluster.run();

      SweepRun run;
      run.label = opt.protocol + "_n" + std::to_string(n) +
                  (threads == 0 ? std::string("_tpn")
                                : "_shared" + std::to_string(threads));
      run.n = n;
      run.loop_threads = threads;
      run.ok = result.success();
      run.elapsed_seconds = result.elapsed_seconds;
      const double elapsed =
          result.elapsed_seconds > 0.0 ? result.elapsed_seconds : 1e-9;
      run.msgs_per_sec =
          static_cast<double>(result.total_delivered) / elapsed;
      const net::LatencyHistogram lat = merged_latency(result);
      run.p50_ms = lat.quantile_ms(0.50);
      run.p99_ms = lat.quantile_ms(0.99);
      run.p999_ms = lat.quantile_ms(0.999);
      std::cout << run.label << ": " << (run.ok ? "ok" : "FAILED")
                << "  msgs/s=" << format_double(run.msgs_per_sec, 1)
                << "  p50=" << format_double(run.p50_ms, 3)
                << "ms p99=" << format_double(run.p99_ms, 3)
                << "ms p999=" << format_double(run.p999_ms, 3) << "ms\n";
      runs.push_back(std::move(run));
    }
  }

  Table table({"label", "n", "threads", "ok", "msgs/s", "p50ms", "p99ms",
               "p999ms"});
  for (const SweepRun& run : runs) {
    table.row()
        .cell(run.label)
        .cell(static_cast<std::uint64_t>(run.n))
        .cell(static_cast<std::uint64_t>(
            run.loop_threads == 0 ? run.n : run.loop_threads))
        .cell(run.ok ? "yes" : "NO")
        .cell(format_double(run.msgs_per_sec, 1))
        .cell(format_double(run.p50_ms, 3))
        .cell(format_double(run.p99_ms, 3))
        .cell(format_double(run.p999_ms, 3));
  }
  table.print(std::cout);

  if (!opt.json_path.empty()) {
    std::ofstream out(opt.json_path);
    if (!out) {
      std::cerr << "error: cannot open " << opt.json_path << "\n";
      return 1;
    }
    bench::JsonWriter j(out);
    j.begin_object();
    j.field("schema", "rcp-net-sweep-v1");
    j.field("protocol", opt.protocol);
    j.field("seed", opt.seed);
    j.key("runs");
    j.begin_array();
    for (const SweepRun& run : runs) {
      j.begin_object();
      j.field("label", run.label);
      j.field("n", run.n);
      j.field("loop_threads", run.loop_threads);
      j.field("ok", run.ok);
      j.field("elapsed_seconds", run.elapsed_seconds);
      j.field("msgs_per_sec", run.msgs_per_sec);
      j.field("p50_ms", run.p50_ms);
      j.field("p99_ms", run.p99_ms);
      j.field("p999_ms", run.p999_ms);
      j.end_object();
    }
    j.end_array();
    j.end_object();
    out << "\n";
    std::cout << "[json] wrote " << opt.json_path << "\n";
  }

  for (const SweepRun& run : runs) {
    if (!run.ok) {
      return 1;
    }
  }
  return 0;
}

/// One forked node: run until decided (correct) or stopped, then report
/// through the exit code — 10 + value for a decision, 0 for a faulty node
/// that was terminated as planned, 1 for a correct node that never decided.
int run_fork_child(const Options& opt, const Plan& plan, ProcessId id) {
  net::NodeConfig nc;
  nc.id = id;
  nc.n = opt.n;
  nc.listen_port = static_cast<std::uint16_t>(opt.base_port + id);
  nc.seed = opt.seed;
  nc.faults.link.drop_probability = opt.drop;
  nc.faults.link.delay_min_ms = opt.delay_min;
  nc.faults.link.delay_max_ms = opt.delay_max;
  for (const auto& [node, event] : opt.disconnects) {
    if (node == id) {
      nc.faults.disconnects.push_back(event);
    }
  }
  bool correct = true;
  for (const auto& [node, phase] : opt.crashes) {
    if (node == id) {
      nc.crash_at_phase = phase;
      correct = false;
    }
  }
  for (const ProcessId b : plan.byzantine_ids) {
    if (b == id) {
      correct = false;
    }
  }
  for (ProcessId p = 0; p < opt.n; ++p) {
    nc.peers.push_back(net::PeerAddress{
        "127.0.0.1", static_cast<std::uint16_t>(opt.base_port + p)});
  }

  net::Node node(nc, make_process(opt, plan, id));
  std::thread runner([&node] { node.run(); });
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(opt.timeout_ms);
  std::optional<Value> decision;
  while (std::chrono::steady_clock::now() < deadline) {
    decision = node.decision();
    if (decision.has_value() || node.crashed()) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  if (decision.has_value()) {
    // Keep echoing long enough for slower peers to assemble their
    // quorums; the parent reaps us on exit either way.
    std::this_thread::sleep_for(std::chrono::milliseconds(750));
  }
  node.request_stop();
  runner.join();
  std::cout << "node " << id << ": "
            << (decision.has_value()
                    ? "decided " + std::to_string(value_index(*decision))
                    : node.crashed() ? std::string("crashed")
                                     : std::string("no decision"))
            << "\n";
  std::cout.flush();  // the caller exits with _exit(), which skips flushing
  if (decision.has_value()) {
    return 10 + static_cast<int>(value_index(*decision));
  }
  return correct ? 1 : 0;
}

int run_fork_mode(const Options& opt, const Plan& plan) {
  std::vector<pid_t> pids(opt.n, -1);
  std::vector<bool> correct(opt.n, true);
  for (const auto& [node, phase] : opt.crashes) {
    (void)phase;
    if (node < opt.n) correct[node] = false;
  }
  for (const ProcessId b : plan.byzantine_ids) {
    correct[b] = false;
  }

  for (ProcessId id = 0; id < opt.n; ++id) {
    const pid_t pid = fork();
    if (pid < 0) {
      std::cerr << "fork failed\n";
      return 1;
    }
    if (pid == 0) {
      _exit(run_fork_child(opt, plan, id));
    }
    pids[id] = pid;
  }

  bool all_decided = true;
  bool agreement = true;
  std::optional<int> agreed_code;
  for (ProcessId id = 0; id < opt.n; ++id) {
    if (!correct[id]) {
      continue;  // reaped below, after the correct nodes are done
    }
    int status = 0;
    waitpid(pids[id], &status, 0);
    const int code = WIFEXITED(status) ? WEXITSTATUS(status) : 1;
    if (code < 10) {
      all_decided = false;
    } else if (!agreed_code.has_value()) {
      agreed_code = code;
    } else if (*agreed_code != code) {
      agreement = false;
    }
  }
  for (ProcessId id = 0; id < opt.n; ++id) {
    if (!correct[id]) {
      kill(pids[id], SIGTERM);
      int status = 0;
      waitpid(pids[id], &status, 0);
    }
  }
  std::cout << "decided  : "
            << (all_decided ? "all correct nodes" : "INCOMPLETE")
            << "\nagreement: " << (agreement ? "holds" : "VIOLATED");
  if (agreement && agreed_code.has_value()) {
    std::cout << " (value " << (*agreed_code - 10) << ")";
  }
  std::cout << "\n";
  return all_decided && agreement ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const auto parsed = parse(argc, argv);
  if (!parsed.has_value()) {
    return usage(argv[0]);
  }
  const Options& opt = *parsed;
  try {
    const Plan plan = resolve_plan(opt);
    if (!opt.sweep_ns.empty()) {
      return run_sweep(opt);
    }
    if (opt.fork_mode) {
      return run_fork_mode(opt, plan);
    }
    const net::ClusterConfig cfg = cluster_config(opt, plan);
    net::Cluster cluster(cfg, [&](ProcessId id) {
      return make_process(opt, plan, id);
    });
    const net::ClusterResult result = cluster.run();
    return report_thread_mode(opt, plan, cfg, result);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
