// A 10-replica cluster agreeing on a feature-flag rollout while 3 replicas
// are actively malicious.
//
//   $ ./byzantine_cluster [strategy] [seed]
//     strategy: silent | equivocator | balancer | babbler   (default all)
//
// The correct replicas run Figure 2; the compromised ones run the chosen
// attack. The example prints per-strategy outcomes and, for one run, the
// tail of the execution trace so you can watch initial/echo quorums form.
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <optional>

#include "adversary/scenario.hpp"
#include "sim/trace.hpp"

namespace {

using namespace rcp;
using adversary::ByzantineKind;

std::optional<ByzantineKind> parse_kind(const char* name) {
  if (std::strcmp(name, "silent") == 0) return ByzantineKind::silent;
  if (std::strcmp(name, "equivocator") == 0) return ByzantineKind::equivocator;
  if (std::strcmp(name, "balancer") == 0) return ByzantineKind::balancer;
  if (std::strcmp(name, "babbler") == 0) return ByzantineKind::babbler;
  return std::nullopt;
}

void run_strategy(ByzantineKind kind, std::uint64_t seed, bool with_trace) {
  const std::uint32_t n = 10;
  adversary::Scenario s;
  s.protocol = adversary::ProtocolKind::malicious;
  // The balancer is only analysed (and only practical) at k <= n/5.
  s.params = {n, kind == ByzantineKind::balancer ? 2u : 3u};
  s.inputs = adversary::inputs_with_ones(n, 6);  // 6 replicas want the flag on
  s.byzantine_kind = kind;
  for (std::uint32_t b = 0; b < s.params.k; ++b) {
    s.byzantine_ids.push_back(static_cast<ProcessId>(3 * b + 1));
  }
  s.seed = seed;
  s.max_steps = 8'000'000;

  auto simulation = adversary::build(s);
  sim::RecordingTrace trace(4096);
  if (with_trace) {
    simulation->set_trace(&trace);
  }
  const auto result = simulation->run();

  std::cout << "strategy=" << to_string(kind) << "  k=" << s.params.k
            << "  status="
            << (result.status == sim::RunStatus::all_decided ? "decided"
                                                             : "incomplete")
            << "  steps=" << result.steps
            << "  phases=" << simulation->metrics().max_phase
            << "  decision=";
  if (const auto v = simulation->agreed_value()) {
    std::cout << *v;
  } else {
    std::cout << '-';
  }
  std::cout << "  agreement="
            << (simulation->agreement_holds() ? "holds" : "VIOLATED") << "\n";

  if (with_trace) {
    std::cout << "\nlast trace events (decisions only):\n";
    for (const auto& e : trace.events()) {
      if (e.kind == sim::EventKind::decide) {
        std::cout << "  [step " << e.step << "] replica " << e.process
                  << " decided " << *e.decision << "\n";
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t seed =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 7;
  std::cout << "Feature-flag rollout: 10 replicas, Byzantine minority, "
               "6 correct replicas prefer ON (value 1)\n\n";
  if (argc > 1) {
    const auto kind = parse_kind(argv[1]);
    if (!kind.has_value()) {
      std::cerr << "unknown strategy '" << argv[1]
                << "' (want silent|equivocator|balancer|babbler)\n";
      return 2;
    }
    run_strategy(*kind, seed, /*with_trace=*/true);
    return 0;
  }
  for (const auto kind :
       {ByzantineKind::silent, ByzantineKind::equivocator,
        ByzantineKind::balancer, ByzantineKind::babbler}) {
    run_strategy(kind, seed, /*with_trace=*/false);
  }
  std::cout << "\n(Pass a strategy name to see its decision trace.)\n";
  return 0;
}
