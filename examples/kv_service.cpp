// Minimal consensus-as-a-service demo: a sharded replicated KV log where
// every client write rides one Bracha-broadcast instance (docs/SERVICE.md).
//
// Runs one deterministic simulation of n replicas (one seat Byzantine) over
// a generated workload, then shows what the service guarantees: every
// correct replica applied the same ops in the same per-stream order, so
// their state digests match — even with an equivocator in the mesh.
//
//   $ ./kv_service
//   $ ./kv_service --n 7 --shards 4 --ops 5000 --adversary babbler
//
// Options:
//   --n N --k K           (default n=7, k=(n-1)/3)
//   --shards S            shards per replica (default 2)
//   --ops OPS             total client writes (default 2000)
//   --adversary none|equivocator|babbler|lane_jammer   (default equivocator)
//   --byz B               byzantine seats (default 1, 0 with none)
//   --no-batching         disable cross-instance frame batching
//   --seed S              (default 1)
#include <iostream>
#include <optional>
#include <string>

#include "common/table.hpp"
#include "service/sim_service.hpp"

namespace {

using namespace rcp;

struct Options {
  std::uint32_t n = 7;
  std::optional<std::uint32_t> k;
  std::uint32_t shards = 2;
  std::uint64_t ops = 2000;
  std::string adversary = "equivocator";
  std::optional<std::uint32_t> byz;
  bool batching = true;
  std::uint64_t seed = 1;
};

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--n N] [--k K] [--shards S] [--ops OPS]\n"
               "       [--adversary none|equivocator|babbler|lane_jammer]\n"
               "       [--byz B]\n"
               "       [--no-batching] [--seed S]\n";
  return 2;
}

std::optional<Options> parse(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      return ++i < argc ? argv[i] : nullptr;
    };
    try {
      if (flag == "--n") {
        const char* v = next();
        if (v == nullptr) return std::nullopt;
        opt.n = static_cast<std::uint32_t>(std::stoul(v));
      } else if (flag == "--k") {
        const char* v = next();
        if (v == nullptr) return std::nullopt;
        opt.k = static_cast<std::uint32_t>(std::stoul(v));
      } else if (flag == "--shards") {
        const char* v = next();
        if (v == nullptr) return std::nullopt;
        opt.shards = static_cast<std::uint32_t>(std::stoul(v));
      } else if (flag == "--ops") {
        const char* v = next();
        if (v == nullptr) return std::nullopt;
        opt.ops = std::stoull(v);
      } else if (flag == "--adversary") {
        const char* v = next();
        if (v == nullptr) return std::nullopt;
        opt.adversary = v;
        if (opt.adversary != "none" && opt.adversary != "equivocator" &&
            opt.adversary != "babbler" && opt.adversary != "lane_jammer") {
          return std::nullopt;
        }
      } else if (flag == "--byz") {
        const char* v = next();
        if (v == nullptr) return std::nullopt;
        opt.byz = static_cast<std::uint32_t>(std::stoul(v));
      } else if (flag == "--no-batching") {
        opt.batching = false;
      } else if (flag == "--seed") {
        const char* v = next();
        if (v == nullptr) return std::nullopt;
        opt.seed = std::stoull(v);
      } else {
        return std::nullopt;
      }
    } catch (...) {
      return std::nullopt;
    }
  }
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  const auto parsed = parse(argc, argv);
  if (!parsed.has_value()) {
    return usage(argv[0]);
  }
  const Options& opt = *parsed;

  service::SimServiceConfig cfg;
  cfg.params = core::ConsensusParams{opt.n, opt.k.value_or((opt.n - 1) / 3)};
  cfg.shards = opt.shards;
  cfg.total_ops = opt.ops;
  cfg.batching = opt.batching;
  cfg.seed = opt.seed;
  cfg.adversary = opt.adversary == "equivocator"
                      ? service::KvAdversaryKind::equivocator
                  : opt.adversary == "babbler" ? service::KvAdversaryKind::babbler
                  : opt.adversary == "lane_jammer"
                      ? service::KvAdversaryKind::lane_jammer
                      : service::KvAdversaryKind::none;
  cfg.byzantine =
      opt.byz.value_or(opt.adversary == "none" ? 0U : 1U);

  try {
    const service::SimServiceResult r = service::run_sim_service(cfg);

    std::cout << "service  : n=" << opt.n << " k=" << cfg.params.k
              << " shards=" << opt.shards << " ops=" << opt.ops
              << " adversary=" << opt.adversary << "(" << cfg.byzantine
              << ")"
              << " batching=" << (opt.batching ? "on" : "off") << "\n";
    Table table({"replica", "correct-stream digest", "full digest"});
    for (std::size_t i = 0; i < r.correct_ids.size(); ++i) {
      table.row()
          .cell(static_cast<std::uint64_t>(r.correct_ids[i]))
          .cell(r.correct_digests[i])
          .cell(r.digests[i]);
    }
    table.print(std::cout);
    std::cout << "status   : "
              << (r.status == sim::RunStatus::all_decided ? "all applied"
                                                          : "INCOMPLETE")
              << "  steps=" << r.steps
              << "  messages=" << r.messages_delivered << "\n"
              << "batching : batches=" << r.batches
              << "  batched msgs=" << r.batched_msgs
              << "  unbatched msgs=" << r.unbatched_msgs << "\n"
              << "defense  : decode errors=" << r.decode_errors
              << "  engine drops=" << r.engine_drops
              << "  admission drops=" << r.admission_drops << "\n"
              << "replicas : "
              << (r.correct_streams_equal ? "state digests MATCH"
                                          : "state digests DIVERGED")
              << "\n";
    return r.status == sim::RunStatus::all_decided && r.correct_streams_equal
               ? 0
               : 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
