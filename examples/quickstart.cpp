// Quickstart: reach Byzantine agreement among 7 simulated processes.
//
//   $ ./quickstart [seed]
//
// Builds the paper's malicious-case protocol (Figure 2) at full resilience
// k = floor((n-1)/3) = 2, runs it on the probabilistic asynchronous message
// system, and prints every process's decision.
#include <cstdlib>
#include <iostream>
#include <memory>
#include <vector>

#include "core/malicious.hpp"
#include "sim/simulation.hpp"

int main(int argc, char** argv) {
  using namespace rcp;

  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;
  const std::uint32_t n = 7;
  const core::ConsensusParams params{n, 2};

  // One process per slot, each with its own initial value.
  std::vector<std::unique_ptr<sim::Process>> processes;
  for (ProcessId p = 0; p < n; ++p) {
    const Value input = p < 3 ? Value::one : Value::zero;
    processes.push_back(core::MaliciousConsensus::make(params, input));
  }

  // The simulator implements the paper's model: one atomic step at a time,
  // with uniformly random message delivery (the probabilistic assumption
  // that makes termination-with-probability-1 work).
  sim::Simulation simulation(sim::SimConfig{.n = n, .seed = seed},
                             std::move(processes));
  const sim::RunResult result = simulation.run();

  std::cout << "status        : "
            << (result.status == sim::RunStatus::all_decided ? "all decided"
                                                             : "incomplete")
            << "\nsteps         : " << result.steps
            << "\nmessages sent : " << simulation.metrics().messages_sent
            << "\nmax phase     : " << simulation.metrics().max_phase << "\n";
  for (ProcessId p = 0; p < n; ++p) {
    std::cout << "process " << p << " decided "
              << *simulation.decision_of(p) << "\n";
  }
  std::cout << "agreement     : "
            << (simulation.agreement_holds() ? "holds" : "VIOLATED") << "\n";
  return simulation.agreement_holds() ? 0 : 1;
}
