// Scenario runner: drive any protocol/adversary combination from the
// command line, optionally recording the execution schedule for exact
// replay.
//
//   $ ./scenario_runner --protocol fig2 --n 10 --k 3 --ones 5
//         --adversary equivocator --seed 7 --record run.sched
//   $ ./scenario_runner --protocol fig2 --n 10 --k 3 --ones 5
//         --adversary equivocator --replay run.sched
//   (both invocations on one line)
//
// Options:
//   --protocol fig1|fig2|majority   (default fig2)
//   --n N --k K                     (default n=7, k = max for the protocol)
//   --ones M                        initial 1-inputs (default n/2)
//   --adversary none|silent|equivocator|balancer|babbler  (default none)
//   --crashes C                     staggered fail-stop crashes (default 0)
//   --seed S                        (default 1)
//   --max-steps X                   (default 2'000'000)
//   --record FILE | --replay FILE   capture / re-drive the schedule
//   --runs R                        Monte-Carlo series of R trials
//                                   (default 1: single run shown in full)
//   --threads N                     worker threads for --runs > 1
//                                   (default: hardware concurrency)
//   --progress                      live completed/total + ETA (needs
//                                   --runs > 1)
//   --json FILE                     rcp-bench-v1 report (same schema as the
//                                   bench_e* harnesses; see docs/PERF.md)
//   --list-scenarios                enumerate the built-in digest-pinned
//                                   scenarios and the golden files under
//                                   --data-dir (default: the checked-in
//                                   tests/data), then exit
//   --data-dir DIR                  where --list-scenarios looks for
//                                   *.plan / *.schedule goldens
//
// The RCP_BENCH_RUNS environment variable overrides the trial count like
// it does for the bench harnesses (the perf-smoke ctest label sets it
// to 2), except when --record/--replay pin a single execution.
#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "adversary/crash_plan.hpp"
#include "adversary/scenario.hpp"
#include "bench_util.hpp"
#include "common/table.hpp"
#include "fuzz/plan.hpp"
#include "runtime/progress.hpp"
#include "runtime/scenario_series.hpp"
#include "runtime/thread_control.hpp"
#include "sim/replay.hpp"

namespace {

using namespace rcp;

struct Options {
  adversary::ProtocolKind protocol = adversary::ProtocolKind::malicious;
  std::uint32_t n = 7;
  std::optional<std::uint32_t> k;
  std::optional<std::uint32_t> ones;
  std::optional<adversary::ByzantineKind> byzantine;
  std::uint32_t crashes = 0;
  std::uint64_t seed = 1;
  std::uint64_t max_steps = 2'000'000;
  std::string record_path;
  std::string replay_path;
  std::uint32_t runs = 1;
  std::uint32_t threads = 0;  // 0: runtime::default_threads()
  bool progress = false;
  std::string json_path;
  bool list_scenarios = false;
  std::string data_dir = RCP_GOLDEN_DATA_DIR;
};

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--protocol fig1|fig2|majority] [--n N] [--k K] [--ones M]\n"
               "       [--adversary none|silent|equivocator|balancer|babbler]\n"
               "       [--crashes C] [--seed S] [--max-steps X]\n"
               "       [--record FILE | --replay FILE]\n"
               "       [--runs R] [--threads N] [--progress] [--json FILE]\n"
               "       [--list-scenarios] [--data-dir DIR]\n";
  return 2;
}

std::optional<Options> parse(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      return ++i < argc ? argv[i] : nullptr;
    };
    if (flag == "--protocol") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      if (std::strcmp(v, "fig1") == 0) {
        opt.protocol = adversary::ProtocolKind::fail_stop;
      } else if (std::strcmp(v, "fig2") == 0) {
        opt.protocol = adversary::ProtocolKind::malicious;
      } else if (std::strcmp(v, "majority") == 0) {
        opt.protocol = adversary::ProtocolKind::majority;
      } else {
        return std::nullopt;
      }
    } else if (flag == "--n") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      opt.n = static_cast<std::uint32_t>(std::stoul(v));
    } else if (flag == "--k") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      opt.k = static_cast<std::uint32_t>(std::stoul(v));
    } else if (flag == "--ones") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      opt.ones = static_cast<std::uint32_t>(std::stoul(v));
    } else if (flag == "--adversary") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      if (std::strcmp(v, "none") == 0) {
        opt.byzantine.reset();
      } else if (std::strcmp(v, "silent") == 0) {
        opt.byzantine = adversary::ByzantineKind::silent;
      } else if (std::strcmp(v, "equivocator") == 0) {
        opt.byzantine = adversary::ByzantineKind::equivocator;
      } else if (std::strcmp(v, "balancer") == 0) {
        opt.byzantine = adversary::ByzantineKind::balancer;
      } else if (std::strcmp(v, "babbler") == 0) {
        opt.byzantine = adversary::ByzantineKind::babbler;
      } else {
        return std::nullopt;
      }
    } else if (flag == "--crashes") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      opt.crashes = static_cast<std::uint32_t>(std::stoul(v));
    } else if (flag == "--seed") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      opt.seed = std::stoull(v);
    } else if (flag == "--max-steps") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      opt.max_steps = std::stoull(v);
    } else if (flag == "--record") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      opt.record_path = v;
    } else if (flag == "--replay") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      opt.replay_path = v;
    } else if (flag == "--runs") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      opt.runs = static_cast<std::uint32_t>(std::stoul(v));
    } else if (flag == "--threads") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      opt.threads = static_cast<std::uint32_t>(std::stoul(v));
    } else if (flag == "--progress") {
      opt.progress = true;
    } else if (flag == "--list-scenarios") {
      opt.list_scenarios = true;
    } else if (flag == "--data-dir") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      opt.data_dir = v;
    } else if (flag == "--json") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      opt.json_path = v;
    } else {
      return std::nullopt;
    }
  }
  return opt;
}

/// The --runs > 1 path: a Monte-Carlo series sharded across the trial
/// pool, seeds derived per trial from --seed, aggregates printed at the
/// end. Recording/replay is single-execution by nature and is rejected.
int run_series_mode(const Options& opt, const adversary::Scenario& s,
                    std::uint32_t k, int argc, char** argv) {
  runtime::SeriesConfig config;
  config.threads = opt.threads;
  const std::uint32_t threads =
      config.threads == 0 ? runtime::default_threads() : config.threads;

  runtime::ThreadControl control;
  std::optional<runtime::ProgressReporter> reporter;
  if (opt.progress) {
    reporter.emplace(control, std::cerr);
  }
  const runtime::SeriesResult r =
      runtime::run_scenario_series(s, opt.runs, opt.seed, {}, config,
                                   &control);
  reporter.reset();  // joins the reporter and finishes the status line

  std::cout << "protocol : " << to_string(opt.protocol) << "  n=" << opt.n
            << " k=" << k << " base-seed=" << opt.seed
            << " runs=" << opt.runs << " threads=" << threads << "\n";
  Table table({"quantity", "value"});
  table.row().cell("all decided").cell(
      std::to_string(r.decided) + "/" + std::to_string(r.runs));
  table.row().cell("agreement held").cell(
      std::to_string(r.agreed) + "/" + std::to_string(r.runs));
  table.row().cell("decided 1").cell(
      std::to_string(r.decided_one) + "/" + std::to_string(r.runs));
  table.row().cell("phases (mean/max)").cell(
      format_double(r.phases.mean(), 2) + " / " +
      format_double(r.phases.max(), 0));
  table.row().cell("steps (mean)").cell(format_double(r.steps.mean(), 0));
  table.row().cell("messages (mean)").cell(
      format_double(r.messages.mean(), 0));
  table.row().cell("wall seconds").cell(format_double(r.wall_seconds, 3));
  table.row().cell("trials/sec").cell(format_double(r.trials_per_sec(), 1));
  table.print(std::cout);

  bench::ThroughputMeter meter;
  meter.note(r);
  const int status = bench::finish(meter, "scenario_runner", argc, argv);
  if (status != 0) {
    return status;
  }
  return r.agreed == r.runs ? 0 : 1;
}

/// --list-scenarios: the built-in digest-pinned registry plus every
/// golden file under the data directory, with enough shape information
/// to pick one for --replay / rcp-fuzz --replay.
int list_scenarios(const std::string& data_dir) {
  namespace fs = std::filesystem;

  std::cout << "built-in scenarios (digest-pinned; see "
               "tests/sim/trace_digest_test.cpp):\n";
  Table builtins({"name", "protocol", "n", "k", "summary"});
  for (const adversary::NamedScenario& named :
       adversary::builtin_scenarios()) {
    builtins.row()
        .cell(named.name)
        .cell(to_string(named.scenario.protocol))
        .cell(std::to_string(named.scenario.params.n))
        .cell(std::to_string(named.scenario.params.k))
        .cell(named.summary);
  }
  builtins.print(std::cout);

  std::vector<fs::path> plans;
  std::vector<fs::path> schedules;
  if (fs::is_directory(data_dir)) {
    for (const auto& entry : fs::directory_iterator(data_dir)) {
      if (!entry.is_regular_file()) {
        continue;
      }
      if (entry.path().extension() == ".plan") {
        plans.push_back(entry.path());
      } else if (entry.path().extension() == ".schedule") {
        schedules.push_back(entry.path());
      }
    }
  } else {
    std::cerr << "warning: data dir not found: " << data_dir << "\n";
  }
  std::sort(plans.begin(), plans.end());
  std::sort(schedules.begin(), schedules.end());

  std::cout << "\ngolden plans in " << data_dir
            << " (replay: rcp-fuzz --replay FILE, live: --nemesis FILE):\n";
  Table table({"file", "protocol", "n", "k", "byz", "tape", "expect"});
  for (const fs::path& path : plans) {
    std::ifstream in(path);
    try {
      fuzz::SchedulePlan plan = fuzz::SchedulePlan::parse(in);
      plan.validate();
      table.row()
          .cell(path.filename().string())
          .cell(fuzz::protocol_token(plan.spec.protocol))
          .cell(std::to_string(plan.spec.params.n))
          .cell(std::to_string(plan.spec.params.k))
          .cell(std::to_string(plan.spec.byzantine_ids.size()))
          .cell(std::to_string(plan.tape.size()))
          .cell(plan.expect.present
                    ? std::string(fuzz::status_token(plan.expect.status)) +
                          "@" + std::to_string(plan.expect.steps)
                    : "-");
    } catch (const std::exception& e) {
      std::cerr << path.filename().string() << ": " << e.what() << "\n";
      return 1;
    }
  }
  table.print(std::cout);

  std::cout << "\nrecorded schedules in " << data_dir
            << " (replay: --replay FILE):\n";
  Table sched({"file", "steps"});
  for (const fs::path& path : schedules) {
    std::ifstream in(path);
    try {
      const sim::Schedule schedule = sim::Schedule::load(in);
      sched.row()
          .cell(path.filename().string())
          .cell(std::to_string(schedule.size()));
    } catch (const std::exception& e) {
      std::cerr << path.filename().string() << ": " << e.what() << "\n";
      return 1;
    }
  }
  sched.print(std::cout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const auto parsed = parse(argc, argv);
  if (!parsed.has_value()) {
    return usage(argv[0]);
  }
  Options opt = *parsed;
  if (opt.list_scenarios) {
    return list_scenarios(opt.data_dir);
  }
  if (opt.record_path.empty() && opt.replay_path.empty()) {
    // RCP_BENCH_RUNS overrides the trial count (perf-smoke sets it to 2);
    // record/replay pin a single execution and are left alone.
    opt.runs = bench::env_runs(opt.runs);
  }

  const core::FaultModel model =
      opt.protocol == adversary::ProtocolKind::fail_stop
          ? core::FaultModel::fail_stop
          : core::FaultModel::malicious;
  const std::uint32_t k =
      opt.k.value_or(core::max_resilience(model, opt.n));

  adversary::Scenario s;
  s.protocol = opt.protocol;
  s.params = {opt.n, k};
  s.inputs = adversary::inputs_with_ones(opt.n, opt.ones.value_or(opt.n / 2));
  s.seed = opt.seed;
  s.max_steps = opt.max_steps;
  if (opt.byzantine.has_value()) {
    s.byzantine_kind = *opt.byzantine;
    for (std::uint32_t b = 0; b < k; ++b) {
      s.byzantine_ids.push_back(static_cast<ProcessId>(b * opt.n / k));
    }
  }
  if (opt.crashes > 0) {
    s.crashes = adversary::CrashPlan::staggered(opt.crashes);
  }

  if (opt.runs > 1) {
    if (!opt.record_path.empty() || !opt.replay_path.empty()) {
      std::cerr << "--record/--replay capture one execution; they cannot be "
                   "combined with --runs > 1\n";
      return 2;
    }
    return run_series_mode(opt, s, k, argc, argv);
  }
  if (opt.progress) {
    std::cerr << "--progress requires --runs > 1\n";
    return 2;
  }

  std::unique_ptr<sim::Simulation> simulation;
  std::shared_ptr<sim::Schedule> recorded;
  if (!opt.replay_path.empty()) {
    std::ifstream in(opt.replay_path);
    if (!in) {
      std::cerr << "cannot read schedule: " << opt.replay_path << "\n";
      return 2;
    }
    auto replay = sim::make_replay_policies(sim::Schedule::load(in));
    simulation = adversary::build(s, std::move(replay.delivery),
                                  std::move(replay.scheduler));
  } else if (!opt.record_path.empty()) {
    auto rec = sim::make_recording_policies();
    recorded = rec.schedule;
    simulation = adversary::build(s, std::move(rec.delivery),
                                  std::move(rec.scheduler));
  } else {
    simulation = adversary::build(s);
  }

  const bench::Stopwatch watch;
  const sim::RunResult result = simulation->run();
  const double run_seconds = watch.seconds();
  std::cout << "protocol : " << to_string(opt.protocol) << "  n=" << opt.n
            << " k=" << k << " seed=" << opt.seed << "\n"
            << "status   : "
            << (result.status == sim::RunStatus::all_decided
                    ? "all correct processes decided"
                    : result.status == sim::RunStatus::quiescent
                          ? "quiescent (deadlock)"
                          : "step limit reached")
            << "\nsteps    : " << result.steps
            << "\nmessages : " << simulation->metrics().messages_sent
            << "\nphases   : " << simulation->metrics().max_phase << "\n";
  for (ProcessId p = 0; p < opt.n; ++p) {
    std::cout << "  p" << p << (simulation->is_faulty(p) ? " (faulty) " : "          ");
    if (const auto d = simulation->decision_of(p)) {
      std::cout << "decided " << *d;
    } else {
      std::cout << "undecided";
    }
    std::cout << "\n";
  }
  std::cout << "agreement: "
            << (simulation->agreement_holds() ? "holds" : "VIOLATED") << "\n";

  if (recorded != nullptr) {
    std::ofstream out(opt.record_path);
    recorded->save(out);
    std::cout << "schedule : " << recorded->size() << " steps -> "
              << opt.record_path << "\n";
  }

  bench::ThroughputMeter meter;
  meter.note(1, run_seconds);
  const int status = bench::finish(meter, "scenario_runner", argc, argv);
  if (status != 0) {
    return status;
  }
  return simulation->agreement_holds() ? 0 : 1;
}
