// A 9-node commit/abort vote that keeps working while nodes crash.
//
//   $ ./crash_tolerant_vote [crashes] [seed]
//
// The nodes run Figure 1 (fail-stop consensus) at full resilience
// k = floor((n-1)/2) = 4. Up to `crashes` (default 4) nodes die at phase
// boundaries — the moment the paper's proofs treat most carefully, since a
// node then dies right after sending its phase broadcast to an arbitrary
// subset of the cluster.
#include <cstdlib>
#include <iostream>

#include "adversary/crash_plan.hpp"
#include "adversary/scenario.hpp"
#include "sim/trace.hpp"

int main(int argc, char** argv) {
  using namespace rcp;

  const std::uint32_t crashes =
      argc > 1 ? static_cast<std::uint32_t>(std::strtoul(argv[1], nullptr, 10))
               : 4;
  const std::uint64_t seed =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 11;
  const std::uint32_t n = 9;
  const std::uint32_t k = core::max_resilience(core::FaultModel::fail_stop, n);
  if (crashes > k) {
    std::cerr << "this deployment tolerates at most k = " << k
              << " crashes (floor((n-1)/2) for n = " << n << ")\n";
    return 2;
  }

  adversary::Scenario s;
  s.protocol = adversary::ProtocolKind::fail_stop;
  s.params = {n, k};
  // 5 of 9 nodes vote COMMIT (1), 4 vote ABORT (0).
  s.inputs = adversary::inputs_with_ones(n, 5);
  s.crashes = adversary::CrashPlan::staggered(crashes);
  s.seed = seed;

  auto simulation = adversary::build(s);
  sim::RecordingTrace trace;
  simulation->set_trace(&trace);
  const auto result = simulation->run();

  std::cout << "cluster  : n = " << n << ", resilience k = " << k << "\n"
            << "inputs   : 5x COMMIT, 4x ABORT\n"
            << "crashes  : " << crashes << " nodes, one per phase boundary\n"
            << "status   : "
            << (result.status == sim::RunStatus::all_decided
                    ? "every surviving node decided"
                    : "incomplete")
            << " after " << result.steps << " steps\n\n";

  for (ProcessId p = 0; p < n; ++p) {
    std::cout << "node " << p << ": "
              << (simulation->alive(p) ? "alive " : "dead  ");
    if (const auto d = simulation->decision_of(p)) {
      std::cout << (*d == Value::one ? "COMMIT" : "ABORT");
    } else {
      std::cout << "-";
    }
    std::cout << "\n";
  }
  std::cout << "\nagreement: "
            << (simulation->agreement_holds() ? "holds" : "VIOLATED") << "\n";

  std::cout << "\ncrash and decision timeline:\n";
  for (const auto& e : trace.events()) {
    if (e.kind == sim::EventKind::crash) {
      std::cout << "  [step " << e.step << "] node " << e.process
                << " crashed\n";
    } else if (e.kind == sim::EventKind::decide) {
      std::cout << "  [step " << e.step << "] node " << e.process
                << " decided " << (*e.decision == Value::one ? "COMMIT" : "ABORT")
                << "\n";
    }
  }
  return simulation->agreement_holds() ? 0 : 1;
}
