// Agreeing on an arbitrary configuration blob (multivalued consensus).
//
//   $ ./config_agreement [seed]
//
// Seven replicas each propose their own candidate config string; two are
// compromised (one silent, one proposing different configs to different
// replicas). The multivalued layer — reliable proposal broadcast + one
// Figure 2 binary instance per candidate slot — makes every correct
// replica adopt the same bytes.
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "extensions/multivalued.hpp"
#include "sim/simulation.hpp"

namespace {

using namespace rcp;

Bytes bytes_of(const std::string& s) {
  Bytes b;
  for (const char c : s) {
    b.push_back(static_cast<std::byte>(c));
  }
  return b;
}

std::string string_of(const Bytes& b) {
  std::string s;
  for (const auto byte : b) {
    s += static_cast<char>(byte);
  }
  return s;
}

class SilentReplica final : public sim::Process {
 public:
  void on_start(sim::Context&) override {}
  void on_message(sim::Context&, const sim::Envelope&) override {}
};

class TwoFacedReplica final : public sim::Process {
 public:
  void on_start(sim::Context& ctx) override {
    for (ProcessId q = 0; q < ctx.n(); ++q) {
      const auto body = q < ctx.n() / 2
                            ? bytes_of("{\"timeout\": 1}")
                            : bytes_of("{\"timeout\": 99}");
      ctx.send(q, ext::ProposalRb::encode_initial(ctx.self(), body));
    }
  }
  void on_message(sim::Context&, const sim::Envelope&) override {}
};

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 9;
  const std::uint32_t n = 7;
  const core::ConsensusParams params{n, 2};

  std::vector<std::unique_ptr<sim::Process>> procs;
  std::vector<ext::MultiValuedConsensus*> replicas;
  procs.push_back(std::make_unique<SilentReplica>());    // replica 0: down
  procs.push_back(std::make_unique<TwoFacedReplica>());  // replica 1: lying
  for (ProcessId p = 2; p < n; ++p) {
    auto m = ext::MultiValuedConsensus::make(
        params, bytes_of("{\"timeout\": " + std::to_string(10 + p) + "}"));
    replicas.push_back(m.get());
    procs.push_back(std::move(m));
  }

  sim::Simulation s(sim::SimConfig{.n = n, .seed = seed, .max_steps = 8'000'000},
                    std::move(procs));
  s.mark_faulty(0);
  s.mark_faulty(1);
  const auto result = s.run();

  std::cout << "status: "
            << (result.status == sim::RunStatus::all_decided ? "converged"
                                                             : "incomplete")
            << " after " << result.steps << " steps\n\n";
  bool all_same = true;
  std::optional<std::string> first;
  for (std::size_t i = 0; i < replicas.size(); ++i) {
    const auto d = replicas[i]->decided_proposal();
    const std::string text = d.has_value() ? string_of(*d) : "<undecided>";
    std::cout << "replica " << i + 2 << " adopted: " << text << "\n";
    if (first.has_value() && text != *first) {
      all_same = false;
    }
    first = text;
  }
  std::cout << "\nagreement: " << (all_same ? "holds" : "VIOLATED") << "\n";
  if (const auto origin = replicas[0]->winning_origin()) {
    std::cout << "winning proposer: replica " << *origin << "\n";
  }
  return all_same ? 0 : 1;
}
