// Reliable broadcast under an equivocating sender (extension module).
//
//   $ ./reliable_broadcast_demo [seed]
//
// A 7-process system where the designated sender is compromised and tells
// half the system "0" and the other half "1". The echo/ready quorums
// guarantee that correct processes never deliver different values; with a
// correct sender, everyone delivers its value.
#include <cstdlib>
#include <iostream>
#include <memory>
#include <vector>

#include "core/reliable_broadcast.hpp"
#include "sim/simulation.hpp"

namespace {

using namespace rcp;

class TwoFacedSender final : public sim::Process {
 public:
  void on_start(sim::Context& ctx) override {
    for (ProcessId q = 0; q < ctx.n(); ++q) {
      const Value v = q < ctx.n() / 2 ? Value::zero : Value::one;
      ctx.send(q, core::RbMsg{.kind = core::RbMsg::Kind::initial, .value = v}
                      .encode());
    }
  }
  void on_message(sim::Context&, const sim::Envelope&) override {}
};

void run(bool sender_is_byzantine, std::uint64_t seed) {
  const std::uint32_t n = 7;
  const core::ConsensusParams params{n, 2};
  std::vector<std::unique_ptr<sim::Process>> procs;
  std::vector<core::ReliableBroadcast*> correct;
  for (ProcessId p = 0; p < n; ++p) {
    if (p == 0 && sender_is_byzantine) {
      procs.push_back(std::make_unique<TwoFacedSender>());
      continue;
    }
    auto rb = core::ReliableBroadcast::make(params, p, /*sender=*/0,
                                            Value::one);
    correct.push_back(rb.get());
    procs.push_back(std::move(rb));
  }
  sim::Simulation s(sim::SimConfig{.n = n, .seed = seed}, std::move(procs));
  if (sender_is_byzantine) {
    s.mark_faulty(0);
  }
  (void)s.run();

  std::cout << (sender_is_byzantine ? "two-faced sender" : "correct sender")
            << ": deliveries =";
  std::size_t delivered = 0;
  bool consistent = true;
  std::optional<Value> seen;
  for (auto* rb : correct) {
    if (const auto v = rb->delivered()) {
      ++delivered;
      std::cout << ' ' << *v;
      if (seen.has_value() && *seen != *v) {
        consistent = false;
      }
      seen = v;
    } else {
      std::cout << " -";
    }
  }
  std::cout << "  (" << delivered << "/" << correct.size() << " delivered, "
            << (consistent ? "consistent" : "SPLIT!") << ")\n";
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t base =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1;
  std::cout << "Reliable broadcast (n = 7, k = 2), sender = process 0\n\n";
  run(/*sender_is_byzantine=*/false, base);
  for (std::uint64_t seed = base; seed < base + 5; ++seed) {
    run(/*sender_is_byzantine=*/true, seed);
  }
  std::cout << "\nWith a two-faced sender the quorum intersection argument "
               "guarantees: either nobody delivers, or everyone delivers "
               "the same value — never a split.\n";
  return 0;
}
