// Interactive front-end for the Section 4 performance analysis.
//
//   $ ./markov_analysis [n]
//
// For a given n (divisible by 6; default 60) prints the fail-stop chain's
// expected phases from every starting state, the collapsed bound, and the
// Section 4.2 malicious-chain numbers for matching parameters.
#include <cmath>
#include <cstdlib>
#include <iostream>

#include "analysis/collapsed_chain.hpp"
#include "analysis/failstop_chain.hpp"
#include "analysis/malicious_chain.hpp"
#include "common/table.hpp"

int main(int argc, char** argv) {
  using namespace rcp;
  using analysis::CollapsedChain;

  unsigned n = argc > 1
                   ? static_cast<unsigned>(std::strtoul(argv[1], nullptr, 10))
                   : 60;
  if (n < 6 || n % 6 != 0) {
    std::cerr << "n must be >= 6 and divisible by 6 (got " << n << ")\n";
    return 2;
  }

  const analysis::FailStopChain chain(n);
  std::cout << "Section 4.1 fail-stop chain, n = " << n
            << " (k = n/3 = " << n / 3 << "):\n\n";
  Table table({"state (ones)", "w_i", "E[phases]"});
  const unsigned stride = n / 12 == 0 ? 1 : n / 12;
  for (unsigned i = 0; i <= n; i += stride) {
    table.row()
        .cell(static_cast<std::uint64_t>(i))
        .cell(chain.w(i), 5)
        .cell(chain.expected_phases_from(i), 4);
  }
  table.print(std::cout);

  const double l = CollapsedChain::kPaperL;
  std::cout << "\nbalanced-state expectation : "
            << format_double(chain.expected_phases_from_balanced(), 4)
            << "\ncollapsed bound (eq. 13)   : "
            << format_double(
                   CollapsedChain::expected_absorption_closed_form(n, l), 4)
            << "\npaper's headline           : < 7\n";

  // A matching Section 4.2 instance if one exists: k = sqrt(n)/2 rounded to
  // keep n - k even, capped at n/5.
  unsigned k = static_cast<unsigned>(std::sqrt(static_cast<double>(n)) / 2.0);
  if ((n - k) % 2 != 0 && k > 0) {
    --k;
  }
  if (k >= 1 && 5 * k <= n && n >= 3 * k + 2) {
    const analysis::MaliciousChain mal(n, k);
    std::cout << "\nSection 4.2 malicious chain with k = " << k
              << " balancing adversaries (l = "
              << format_double(mal.effective_l(), 2) << "):\n"
              << "  E[phases from balanced] = "
              << format_double(mal.expected_phases_from_balanced(), 4)
              << "\n  paper bound 1/(2*Phi(l)) = "
              << format_double(
                     analysis::MaliciousChain::paper_bound(mal.effective_l()),
                     4)
              << "\n";
  }
  return 0;
}
