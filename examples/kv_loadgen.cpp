// Client load generator for the consensus-backed KV service
// (docs/SERVICE.md): drive ≥100k writes through the replicated log and
// report ops/sec, p50/p99/p999 apply latency, and frames-per-op — the
// batching-effectiveness metric the rcp-svc-v1 gate tracks.
//
// Two transports, one replica:
//   --mode sim   G independent deterministic groups on a TrialPool (the
//                worker-shard layout of docs/SERVICE.md), aggregate ops/sec.
//   --mode net   one loopback TCP cluster (net::Cluster); client threads
//                enqueue ops into per-replica queues, replicas pull them on
//                the idle tick, frames-per-op comes from real transport
//                frame counters (PeerCounters::msgs_out).
//
// Latency is origination->apply on the owner replica (consensus latency;
// queue wait before the window admits an op is excluded — the same
// definition sim mode uses, so the two modes are comparable).
//
// --batching both runs the workload twice — batched and unbatched — and
// reports both, so the report itself demonstrates the frame reduction.
//
//   $ ./kv_loadgen --mode sim --ops 100000 --json svc.json
//   $ ./kv_loadgen --mode net --n 7 --ops 100000 --batching both
//
// Options:
//   --mode sim|net          (default sim)
//   --n N --k K             (default n=7, k=(n-1)/3)
//   --shards S              shards per replica (default 4)
//   --ops OPS               total client writes per run (default 100000)
//   --window W              per-shard origination window (default 64)
//   --batching on|off|both  (default both)
//   --groups G              sim mode: independent groups (default 4)
//   --threads T             sim mode: TrialPool size (default: cores)
//   --seed S                (default 1)
//   --timeout-ms T          net mode: per-run wall limit (default 120000)
//   --loop-threads T        net mode: T shared event-loop threads instead
//                           of one thread per replica (labels gain
//                           a _sharedT suffix)
//   --backend auto|poll|epoll   net mode: readiness backend
//   --json PATH             write the rcp-svc-v1 report
#include <algorithm>
#include <chrono>
#include <deque>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/annotations.hpp"
#include "common/json.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "net/cluster.hpp"
#include "runtime/sync.hpp"
#include "service/loadgen.hpp"
#include "service/sim_service.hpp"
#include "service/workload.hpp"

namespace {

using namespace rcp;
using Clock = std::chrono::steady_clock;

struct Options {
  std::string mode = "sim";
  std::uint32_t n = 7;
  std::optional<std::uint32_t> k;
  std::uint32_t shards = 4;
  std::uint64_t ops = 100000;
  std::uint32_t window = 64;
  std::string batching = "both";
  std::uint32_t groups = 4;
  std::uint32_t threads = 0;
  std::uint64_t seed = 1;
  std::uint32_t timeout_ms = 120000;
  std::uint32_t loop_threads = 0;
  net::Reactor::Backend backend = net::Reactor::Backend::automatic;
  std::string json_path;
};

/// One run's aggregate — shared by the sim and net paths so reporting and
/// the JSON writer see a single shape.
struct RunReport {
  std::string label;
  bool batching = false;
  std::uint64_t ops = 0;
  double wall_seconds = 0;
  double ops_per_sec = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  double p999_ms = 0;
  /// net: data frames enqueued across all links; sim: messages delivered.
  std::uint64_t frames = 0;
  double frames_per_op = 0;
  std::uint64_t batches = 0;
  std::uint64_t batched_msgs = 0;
  std::uint64_t unbatched_msgs = 0;
  bool ok = false;
};

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--mode sim|net] [--n N] [--k K] [--shards S] [--ops OPS]\n"
               "       [--window W] [--batching on|off|both] [--groups G]\n"
               "       [--threads T] [--seed S] [--timeout-ms T]\n"
               "       [--loop-threads T] [--backend auto|poll|epoll]"
               " [--json PATH]\n";
  return 2;
}

std::optional<Options> parse(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      return ++i < argc ? argv[i] : nullptr;
    };
    try {
      if (flag == "--mode") {
        const char* v = next();
        if (v == nullptr) return std::nullopt;
        opt.mode = v;
        if (opt.mode != "sim" && opt.mode != "net") return std::nullopt;
      } else if (flag == "--n") {
        const char* v = next();
        if (v == nullptr) return std::nullopt;
        opt.n = static_cast<std::uint32_t>(std::stoul(v));
      } else if (flag == "--k") {
        const char* v = next();
        if (v == nullptr) return std::nullopt;
        opt.k = static_cast<std::uint32_t>(std::stoul(v));
      } else if (flag == "--shards") {
        const char* v = next();
        if (v == nullptr) return std::nullopt;
        opt.shards = static_cast<std::uint32_t>(std::stoul(v));
      } else if (flag == "--ops") {
        const char* v = next();
        if (v == nullptr) return std::nullopt;
        opt.ops = std::stoull(v);
      } else if (flag == "--window") {
        const char* v = next();
        if (v == nullptr) return std::nullopt;
        opt.window = static_cast<std::uint32_t>(std::stoul(v));
      } else if (flag == "--batching") {
        const char* v = next();
        if (v == nullptr) return std::nullopt;
        opt.batching = v;
        if (opt.batching != "on" && opt.batching != "off" &&
            opt.batching != "both") {
          return std::nullopt;
        }
      } else if (flag == "--groups") {
        const char* v = next();
        if (v == nullptr) return std::nullopt;
        opt.groups = static_cast<std::uint32_t>(std::stoul(v));
      } else if (flag == "--threads") {
        const char* v = next();
        if (v == nullptr) return std::nullopt;
        opt.threads = static_cast<std::uint32_t>(std::stoul(v));
      } else if (flag == "--seed") {
        const char* v = next();
        if (v == nullptr) return std::nullopt;
        opt.seed = std::stoull(v);
      } else if (flag == "--timeout-ms") {
        const char* v = next();
        if (v == nullptr) return std::nullopt;
        opt.timeout_ms = static_cast<std::uint32_t>(std::stoul(v));
      } else if (flag == "--loop-threads") {
        const char* v = next();
        if (v == nullptr) return std::nullopt;
        opt.loop_threads = static_cast<std::uint32_t>(std::stoul(v));
      } else if (flag == "--backend") {
        const char* v = next();
        if (v == nullptr) return std::nullopt;
        const std::string s = v;
        if (s == "auto") {
          opt.backend = net::Reactor::Backend::automatic;
        } else if (s == "poll") {
          opt.backend = net::Reactor::Backend::poll;
        } else if (s == "epoll") {
          opt.backend = net::Reactor::Backend::epoll;
        } else {
          return std::nullopt;
        }
      } else if (flag == "--json") {
        const char* v = next();
        if (v == nullptr) return std::nullopt;
        opt.json_path = v;
      } else {
        return std::nullopt;
      }
    } catch (...) {
      return std::nullopt;
    }
  }
  return opt;
}

// ---- sim mode -----------------------------------------------------------

RunReport run_sim(const Options& opt, bool batching) {
  service::SimLoadgenConfig cfg;
  cfg.group.params =
      core::ConsensusParams{opt.n, opt.k.value_or((opt.n - 1) / 3)};
  cfg.group.shards = opt.shards;
  // `ops` is the whole-run budget; each group carries an equal slice.
  cfg.group.total_ops = std::max<std::uint64_t>(1, opt.ops / opt.groups);
  cfg.group.window = opt.window;
  cfg.group.batching = batching;
  cfg.group.seed = opt.seed;
  cfg.groups = opt.groups;
  cfg.threads = opt.threads;

  const service::SimLoadgenResult r = service::run_sim_loadgen(cfg);
  RunReport report;
  report.label = "sim_n" + std::to_string(opt.n) +
                 (batching ? "_batched" : "_unbatched");
  report.batching = batching;
  report.ops = r.total_ops;
  report.wall_seconds = r.wall_seconds;
  report.ops_per_sec = r.ops_per_sec;
  report.p50_ms = r.p50_ms;
  report.p99_ms = r.p99_ms;
  report.p999_ms = r.p999_ms;
  report.frames = r.messages_delivered;
  report.frames_per_op = r.frames_per_op;
  report.batches = r.batches;
  report.batched_msgs = r.batched_msgs;
  report.unbatched_msgs = r.unbatched_msgs;
  report.ok = r.all_ok;
  return report;
}

// ---- net mode -----------------------------------------------------------

/// Thread-safe OpSource: client threads push, the node thread pulls on the
/// idle tick. next() stamps origination time; the apply hook collects it —
/// push/next/take all under one lock because they cross threads.
class QueueOpSource final : public service::OpSource {
 public:
  explicit QueueOpSource(std::uint32_t shards)
      : queues_(shards), stamps_(shards) {}

  void push(std::uint32_t shard, service::KvOp op) {
    const runtime::MutexLock lock(mu_);
    queues_[shard].push_back(op);
  }

  [[nodiscard]] std::optional<service::KvOp> next(
      std::uint32_t shard) override {
    const runtime::MutexLock lock(mu_);
    if (queues_[shard].empty()) {
      return std::nullopt;
    }
    const service::KvOp op = queues_[shard].front();
    queues_[shard].pop_front();
    stamps_[shard].push_back(Clock::now());
    return op;
  }

  /// Own-op applies run in per-shard seq order, matching next() order.
  [[nodiscard]] double take_latency_ms(std::uint32_t shard) {
    const runtime::MutexLock lock(mu_);
    const Clock::time_point t0 = stamps_[shard].front();
    stamps_[shard].pop_front();
    return std::chrono::duration<double, std::milli>(Clock::now() - t0)
        .count();
  }

 private:
  runtime::Mutex mu_;
  std::vector<std::deque<service::KvOp>> queues_ RCP_GUARDED_BY(mu_);
  std::vector<std::deque<Clock::time_point>> stamps_ RCP_GUARDED_BY(mu_);
};

RunReport run_net(const Options& opt, bool batching) {
  const core::ConsensusParams params{opt.n,
                                     opt.k.value_or((opt.n - 1) / 3)};
  const service::Workload workload =
      service::build_workload(params, 0, opt.shards, opt.ops, opt.seed);

  std::vector<std::shared_ptr<QueueOpSource>> sources;
  sources.reserve(opt.n);
  for (ProcessId p = 0; p < opt.n; ++p) {
    sources.push_back(std::make_shared<QueueOpSource>(opt.shards));
  }

  net::ClusterConfig cc;
  cc.n = opt.n;
  cc.seed = opt.seed;
  cc.timeout_ms = opt.timeout_ms;
  // The replica is pull-based; the tick is what turns queued client ops
  // into originations between message arrivals.
  cc.limits.idle_tick_ms = 1;
  // The default queue bound models lossy faulty-process behaviour; a load
  // generator measuring throughput needs the transport lossless, and an
  // unbatched run at full window pushes thousands of frames per link.
  cc.limits.max_queued_frames = std::size_t{1} << 17;
  cc.limits.backpressure_high_water = std::size_t{1} << 16;
  cc.loop_threads = opt.loop_threads;
  cc.backend = opt.backend;

  net::Cluster cluster(cc, [&](ProcessId id) {
    service::ReplicaConfig rc;
    rc.params = params;
    rc.shards = opt.shards;
    rc.batching = batching;
    rc.window = opt.window;
    rc.expected_per_origin = workload.expected_per_origin;
    return std::make_unique<service::KvReplica>(rc, sources[id]);
  });

  // Per-node latency sinks: each apply hook runs on its own node's thread.
  std::vector<std::vector<double>> node_latencies(opt.n);
  std::vector<service::KvReplica*> replicas(opt.n, nullptr);
  for (ProcessId p = 0; p < opt.n; ++p) {
    auto& replica = dynamic_cast<service::KvReplica&>(cluster.node(p).process());
    replicas[p] = &replica;
    QueueOpSource* src = sources[p].get();
    auto* sink = &node_latencies[p];
    replica.set_apply_hook([src, sink](std::uint32_t shard,
                                       std::uint64_t /*seq*/,
                                       service::KvOp /*op*/) {
      sink->push_back(src->take_latency_ms(shard));
    });
  }

  // Client threads: one per replica, feeding that replica's streams.
  std::vector<std::thread> clients;
  clients.reserve(opt.n);
  for (ProcessId p = 0; p < opt.n; ++p) {
    clients.emplace_back([&workload, &sources, p] {
      for (std::uint32_t shard = 0; shard < workload.shards; ++shard) {
        for (const service::KvOp op : workload.scripts[p][shard]) {
          sources[p]->push(shard, op);
        }
      }
    });
  }

  const net::ClusterResult result = cluster.run();
  for (std::thread& t : clients) {
    t.join();
  }

  RunReport report;
  report.label = "net_n" + std::to_string(opt.n) +
                 (batching ? "_batched" : "_unbatched") +
                 (opt.loop_threads > 0
                      ? "_shared" + std::to_string(opt.loop_threads)
                      : "");
  report.batching = batching;
  report.ops = workload.total_ops;
  report.wall_seconds = result.elapsed_seconds;
  if (result.elapsed_seconds > 0) {
    report.ops_per_sec =
        static_cast<double>(workload.total_ops) / result.elapsed_seconds;
  }
  std::vector<double> latencies;
  for (const std::vector<double>& per_node : node_latencies) {
    latencies.insert(latencies.end(), per_node.begin(), per_node.end());
  }
  if (!latencies.empty()) {
    report.p50_ms = quantile(latencies, 0.50);
    report.p99_ms = quantile(latencies, 0.99);
    report.p999_ms = quantile(latencies, 0.999);
  }
  for (const net::NodeOutcome& node : result.nodes) {
    for (const net::PeerCounters& pc : node.stats.peers) {
      report.frames += pc.msgs_out;
    }
  }
  if (workload.total_ops > 0) {
    report.frames_per_op = static_cast<double>(report.frames) /
                           static_cast<double>(workload.total_ops);
  }
  std::uint64_t first_digest = 0;
  bool digests_equal = true;
  for (ProcessId p = 0; p < opt.n; ++p) {
    const std::uint64_t d =
        service::correct_stream_digest(*replicas[p], opt.n, opt.shards);
    if (p == 0) {
      first_digest = d;
    } else if (d != first_digest) {
      digests_equal = false;
    }
    report.batches += replicas[p]->batcher_stats().batches;
    report.batched_msgs += replicas[p]->batcher_stats().batched_msgs;
    report.unbatched_msgs += replicas[p]->batcher_stats().unbatched_msgs;
  }
  report.ok = result.all_correct_decided && digests_equal;
  return report;
}

// ---- reporting ----------------------------------------------------------

void print_reports(const Options& opt, const std::vector<RunReport>& runs) {
  std::cout << "kv_loadgen: mode=" << opt.mode << " n=" << opt.n
            << " shards=" << opt.shards << " ops=" << opt.ops
            << " window=" << opt.window << " seed=" << opt.seed << "\n";
  Table table({"run", "ops", "wall_s", "ops/sec", "p50_ms", "p99_ms",
               "p999_ms", "frames/op", "batches", "ok"});
  for (const RunReport& r : runs) {
    table.row()
        .cell(r.label)
        .cell(r.ops)
        .cell(r.wall_seconds, 3)
        .cell(r.ops_per_sec, 1)
        .cell(r.p50_ms, 3)
        .cell(r.p99_ms, 3)
        .cell(r.p999_ms, 3)
        .cell(r.frames_per_op, 2)
        .cell(r.batches)
        .cell(r.ok ? "yes" : "NO");
  }
  table.print(std::cout);
  if (runs.size() == 2) {
    // [0] batched, [1] unbatched by construction.
    const double ratio =
        runs[0].frames_per_op > 0
            ? runs[1].frames_per_op / runs[0].frames_per_op
            : 0.0;
    std::cout << "batching : " << format_double(runs[1].frames_per_op, 2)
              << " -> " << format_double(runs[0].frames_per_op, 2)
              << " frames/op (" << format_double(ratio, 2)
              << "x reduction)\n";
  }
}

int write_json(const Options& opt, const std::vector<RunReport>& runs) {
  std::ofstream out(opt.json_path);
  if (!out) {
    std::cerr << "error: cannot open " << opt.json_path << " for writing\n";
    return 1;
  }
  bench::JsonWriter j(out);
  j.begin_object();
  j.field("schema", "rcp-svc-v1");
  j.field("mode", opt.mode);
  j.field("n", opt.n);
  j.field("k", opt.k.value_or((opt.n - 1) / 3));
  j.field("shards", opt.shards);
  j.field("ops", opt.ops);
  j.field("window", opt.window);
  j.field("seed", opt.seed);
  if (opt.mode == "sim") {
    j.field("groups", opt.groups);
  }
  j.key("runs");
  j.begin_array();
  for (const RunReport& r : runs) {
    j.begin_object();
    j.field("label", r.label);
    j.field("batching", r.batching);
    j.field("ops", r.ops);
    j.field("wall_seconds", r.wall_seconds);
    j.field("ops_per_sec", r.ops_per_sec);
    j.field("p50_ms", r.p50_ms);
    j.field("p99_ms", r.p99_ms);
    j.field("p999_ms", r.p999_ms);
    j.field("frames", r.frames);
    j.field("frames_per_op", r.frames_per_op);
    j.field("batches", r.batches);
    j.field("batched_msgs", r.batched_msgs);
    j.field("unbatched_msgs", r.unbatched_msgs);
    j.field("ok", r.ok);
    j.end_object();
  }
  j.end_array();
  if (runs.size() == 2 && runs[0].frames_per_op > 0) {
    j.field("frames_per_op_reduction",
            runs[1].frames_per_op / runs[0].frames_per_op);
  }
  j.end_object();
  out << "\n";
  std::cout << "[json] wrote " << opt.json_path << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const auto parsed = parse(argc, argv);
  if (!parsed.has_value()) {
    return usage(argv[0]);
  }
  const Options& opt = *parsed;

  try {
    std::vector<RunReport> runs;
    // "both" runs batched first so runs[0]/runs[1] line up with the
    // reduction summary.
    if (opt.batching != "off") {
      runs.push_back(opt.mode == "sim" ? run_sim(opt, true)
                                       : run_net(opt, true));
    }
    if (opt.batching != "on") {
      runs.push_back(opt.mode == "sim" ? run_sim(opt, false)
                                       : run_net(opt, false));
    }
    print_reports(opt, runs);
    if (!opt.json_path.empty()) {
      const int rc = write_json(opt, runs);
      if (rc != 0) {
        return rc;
      }
    }
    for (const RunReport& r : runs) {
      if (!r.ok) {
        return 1;
      }
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
